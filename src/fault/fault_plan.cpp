#include "fault/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.h"
#include "util/rng.h"

namespace hetero::fault {

namespace {

[[noreturn]] void bad_spec(const std::string& what, const std::string& token) {
  throw ParseError("fault-plan", what + " in \"" + token + "\"");
}

FaultKind parse_kind(const std::string& word, const std::string& token) {
  if (word == "slow") return FaultKind::kSlowdown;
  if (word == "stall") return FaultKind::kStall;
  if (word == "crash") return FaultKind::kCrash;
  if (word == "join") return FaultKind::kJoin;
  if (word == "oom") return FaultKind::kOom;
  if (word == "partition") return FaultKind::kPartition;
  bad_spec("unknown kind \"" + word + "\"", token);
}

double parse_number(const std::string& text, const std::string& token) {
  try {
    return util::parse_f64_strict(text, "fault-plan");
  } catch (const ParseError&) {
    bad_spec("bad number \"" + text + "\"", token);
  }
}

FaultEvent parse_event(const std::string& token) {
  FaultEvent ev;
  const auto at = token.find('@');
  const auto colon = token.rfind(':');
  if (at == std::string::npos || colon == std::string::npos || colon < at) {
    bad_spec("expected kind@time...:gpuN", token);
  }
  ev.kind = parse_kind(token.substr(0, at), token);

  const std::string target = token.substr(colon + 1);
  std::size_t prefix_len = 0;
  if (target.rfind("gpu", 0) == 0) {
    prefix_len = 3;
  } else if (target.rfind("node", 0) == 0) {
    prefix_len = 4;
    ev.node_target = true;
  }
  if (prefix_len == 0 || target.size() == prefix_len) {
    bad_spec("expected target gpuN or nodeN", token);
  }
  // Strict integer parse: "gpu1.5", "gpu-1", and values past 2^53 (where a
  // double->size_t round-trip would be lossy or UB) are all rejected.
  try {
    ev.device = static_cast<std::size_t>(util::parse_u64_strict(
        target.substr(prefix_len), "fault-plan", ParseError::npos,
        std::numeric_limits<std::size_t>::max()));
  } catch (const ParseError&) {
    bad_spec("bad device \"" + target + "\"", token);
  }

  // The middle section is time, optionally followed by +duration and/or
  // xfactor (in that order). A '+' directly after an exponent marker is
  // part of a number ("2.4e+18"), not the duration separator — to_string()
  // prints large times in scientific notation and must round-trip.
  std::string middle = token.substr(at + 1, colon - at - 1);
  const auto x = middle.find('x');
  if (x != std::string::npos) {
    ev.factor = parse_number(middle.substr(x + 1), token);
    middle = middle.substr(0, x);
  }
  auto plus = std::string::npos;
  for (std::size_t i = 1; i < middle.size(); ++i) {
    if (middle[i] == '+' && middle[i - 1] != 'e' && middle[i - 1] != 'E') {
      plus = i;
      break;
    }
  }
  if (plus != std::string::npos) {
    ev.duration = parse_number(middle.substr(plus + 1), token);
    middle = middle.substr(0, plus);
  }
  ev.time = parse_number(middle, token);
  return ev;
}

}  // namespace

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSlowdown:
      return "slow";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kJoin:
      return "join";
    case FaultKind::kOom:
      return "oom";
    case FaultKind::kPartition:
      return "partition";
  }
  return "?";
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    auto next = spec.find(';', pos);
    if (next == std::string::npos) next = spec.size();
    const std::string token = spec.substr(pos, next - pos);
    if (!token.empty()) plan.events.push_back(parse_event(token));
    pos = next + 1;
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.device < b.device;
                   });
  return plan;
}

FaultPlan FaultPlan::random(std::size_t num_devices,
                            const RandomFaultConfig& cfg, std::uint64_t seed) {
  FaultPlan plan;
  util::Rng rng(seed);
  auto exponential = [&rng](double mean) {
    return -mean * std::log(1.0 - rng.next_double());
  };

  for (std::size_t d = 0; d < num_devices; ++d) {
    // Poisson processes for transient faults: exponential inter-arrival
    // gaps with the configured per-horizon rate.
    if (cfg.slowdown_rate > 0.0) {
      const double mean_gap = cfg.horizon / cfg.slowdown_rate;
      for (double t = exponential(mean_gap); t < cfg.horizon;
           t += exponential(mean_gap)) {
        plan.events.push_back({FaultKind::kSlowdown, d, t,
                               exponential(cfg.mean_duration),
                               cfg.slowdown_factor, 0});
      }
    }
    if (cfg.stall_rate > 0.0) {
      const double mean_gap = cfg.horizon / cfg.stall_rate;
      for (double t = exponential(mean_gap); t < cfg.horizon;
           t += exponential(mean_gap)) {
        plan.events.push_back({FaultKind::kStall, d, t,
                               exponential(cfg.mean_duration), 1.0, 0});
      }
    }
  }

  // Crashes: device 0 is exempt so the merge group never empties.
  if (cfg.crash_fraction > 0.0 && num_devices > 1) {
    const auto want = static_cast<std::size_t>(
        std::ceil(cfg.crash_fraction * static_cast<double>(num_devices)));
    const std::size_t crashes = std::min(want, num_devices - 1);
    std::vector<std::size_t> candidates;
    for (std::size_t d = 1; d < num_devices; ++d) candidates.push_back(d);
    rng.shuffle(candidates);
    for (std::size_t i = 0; i < crashes; ++i) {
      const std::size_t d = candidates[i];
      const double t = rng.uniform(0.1 * cfg.horizon, 0.9 * cfg.horizon);
      plan.events.push_back({FaultKind::kCrash, d, t, 0.0, 1.0, 0});
      if (cfg.rejoin) {
        plan.events.push_back(
            {FaultKind::kJoin, d, t + exponential(cfg.mean_outage), 0.0, 1.0,
             0});
      }
    }
  }

  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.device < b.device;
                   });
  return plan;
}

std::string FaultPlan::to_string() const {
  std::ostringstream out;
  out.precision(17);  // round-trips doubles through parse()
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& ev = events[i];
    if (i) out << ';';
    out << fault::to_string(ev.kind) << '@' << ev.time;
    if (ev.duration > 0.0) out << '+' << ev.duration;
    if (ev.kind == FaultKind::kSlowdown ||
        (ev.kind == FaultKind::kOom && ev.mem_bytes == 0)) {
      out << 'x' << ev.factor;
    }
    out << (ev.node_target ? ":node" : ":gpu") << ev.device;
  }
  return out.str();
}

void FaultPlan::validate(std::size_t num_devices) const {
  validate(sim::Topology::flat(num_devices));
}

void FaultPlan::validate(const sim::Topology& topo) const {
  // Structural checks on the raw events: target ranges, windows, factors.
  double prev_time = -1.0;
  for (const auto& ev : events) {
    const std::string token = fault::to_string(ev.kind) + " event";
    if (ev.node_target) {
      if (ev.device >= topo.num_nodes) {
        bad_spec("node index out of range", token);
      }
    } else if (ev.device >= topo.num_replicas()) {
      bad_spec("device index out of range", token);
    }
    if (!(ev.time >= 0.0)) bad_spec("negative or NaN time", token);
    if (ev.time < prev_time) bad_spec("events not sorted by time", token);
    prev_time = ev.time;
    switch (ev.kind) {
      case FaultKind::kSlowdown:
        if (!(ev.duration > 0.0)) bad_spec("slowdown needs +duration", token);
        if (!(ev.factor > 0.0 && ev.factor <= 1.0)) {
          bad_spec("slowdown factor must be in (0,1]", token);
        }
        break;
      case FaultKind::kStall:
        if (!(ev.duration > 0.0)) bad_spec("stall needs +duration", token);
        break;
      case FaultKind::kOom:
        if (ev.mem_bytes == 0 && !(ev.factor > 0.0 && ev.factor < 1.0)) {
          bad_spec("oom factor must be in (0,1)", token);
        }
        break;
      case FaultKind::kPartition:
        if (!ev.node_target) bad_spec("partition targets a node", token);
        if (!(ev.duration > 0.0)) bad_spec("partition needs +duration", token);
        break;
      case FaultKind::kCrash:
      case FaultKind::kJoin:
        break;  // membership replay below, on the expanded plan
    }
  }

  // Membership replay on the device-level expansion: a whole-node crash
  // kills every replica the node owns, so a later per-device crash on one
  // of them (or a join of a replica the partition already healed) is caught
  // the same way single-device misuse always was.
  const FaultPlan expanded = expand(topo);
  std::vector<char> alive(topo.num_replicas(), 1);
  for (const auto& ev : expanded.events) {
    const std::string token = fault::to_string(ev.kind) + " event";
    if (ev.kind == FaultKind::kCrash) {
      if (!alive[ev.device]) bad_spec("crash of already-dead device", token);
      alive[ev.device] = 0;
    } else if (ev.kind == FaultKind::kJoin) {
      if (alive[ev.device]) bad_spec("join of alive device", token);
      alive[ev.device] = 1;
    }
  }
  if (std::none_of(alive.begin(), alive.end(), [](char a) { return a != 0; })) {
    bad_spec("plan leaves no device alive", "plan");
  }
}

FaultPlan FaultPlan::expand(const sim::Topology& topo) const {
  FaultPlan out;
  auto push_outage = [&out](FaultEvent dev, double heal_time) {
    dev.kind = FaultKind::kCrash;
    dev.duration = 0.0;
    out.events.push_back(dev);
    dev.kind = FaultKind::kJoin;
    dev.time = heal_time;
    out.events.push_back(dev);
  };
  for (const auto& ev : events) {
    if (!ev.node_target) {
      if (ev.kind == FaultKind::kPartition) {
        // validate() rejects device-level partitions; expand one
        // defensively as a single-replica outage.
        FaultEvent dev = ev;
        push_outage(dev, ev.time + ev.duration);
      } else {
        out.events.push_back(ev);
      }
      continue;
    }
    for (std::size_t r = 0; r < topo.num_replicas(); ++r) {
      if (topo.node_of[r] != static_cast<int>(ev.device)) continue;
      FaultEvent dev = ev;
      dev.node_target = false;
      dev.device = r;
      if (ev.kind == FaultKind::kPartition) {
        push_outage(dev, ev.time + ev.duration);
      } else {
        out.events.push_back(dev);
      }
    }
  }
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.device < b.device;
                   });
  return out;
}

}  // namespace hetero::fault
