#include "fault/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hetero::fault {

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

void FaultInjector::arm(core::MultiGpuRuntime& runtime,
                        double applied_until) const {
  const sim::Topology& topo = runtime.links().topology();
  plan_.validate(topo);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  auto& stats = runtime.fault_stats();
  stats.node_events += static_cast<std::size_t>(
      std::count_if(plan_.events.begin(), plan_.events.end(),
                    [](const FaultEvent& ev) { return ev.node_target; }));

  // Node events (including partitions) arm as their per-replica expansion:
  // membership flips ride the existing crash/join merge-boundary schedule.
  const FaultPlan expanded = plan_.expand(topo);
  for (const auto& ev : expanded.events) {
    auto& gpu = runtime.gpu(ev.device);
    switch (ev.kind) {
      case FaultKind::kSlowdown:
        gpu.add_slowdown(ev.time, ev.time + ev.duration, ev.factor);
        stats.slowdowns += 1;
        break;
      case FaultKind::kStall:
        gpu.add_stall(ev.time, ev.time + ev.duration);
        stats.stalls += 1;
        break;
      case FaultKind::kOom: {
        const auto cap =
            ev.mem_bytes != 0
                ? ev.mem_bytes
                : static_cast<std::size_t>(
                      ev.factor *
                      static_cast<double>(gpu.spec().memory_bytes));
        const double end = ev.duration > 0.0 ? ev.time + ev.duration : kInf;
        gpu.add_memory_cap(ev.time, end, cap);
        stats.oom_events += 1;
        break;
      }
      case FaultKind::kCrash:
        if (ev.time <= applied_until) break;  // already in restored state
        runtime.schedule_crash(ev.device, ev.time);
        break;
      case FaultKind::kJoin:
        if (ev.time <= applied_until) break;
        runtime.schedule_join(ev.device, ev.time);
        break;
      case FaultKind::kPartition:
        break;  // expand() rewrote partitions into crash+join pairs
    }
    stats.events_injected += 1;
  }
}

}  // namespace hetero::fault
