// Checkpointed recovery for the adaptive trainer (tentpole: fault
// subsystem). A checkpoint captures everything the mega-batch loop depends
// on at a merge boundary — global + momentum models, sample-stream
// position, per-device SGD state, clocks and jitter RNGs, scaling-cadence
// state, early-stopping state — so that an interrupted run resumed from the
// checkpoint is bit-identical to the uninterrupted run at every subsequent
// merge boundary.
//
// On-disk format (little-endian host order, like nn/serialize):
//   magic "HGCK" | version u32 (1, 2 or 3) | seed u64 |
//   megabatches_completed u64 |
//   samples_served u64 | round_robin_cursor u64 | vtime f64 | best_top1 f64 |
//   stagnation u64 | num_gpus u64 |
//   per gpu { batch_size u64 | learning_rate f64 | updates u64 | alive u8 |
//             busy_seconds f64 | degraded_until f64 | transient_episodes u64 |
//             rng s[4] u64 | rng cached f64 | rng has_cached u8 } |
//   scaling-scheduler state |
//   [v2+] merge-compression section: compressed u8 | when 1:
//     loss_scale f64 | loss_scale_streak u64 | num_residuals u64 |
//     per replica residual blob (raw fp32 bytes, size-prefixed) |
//   [v3] optimizer section: opt_kind u8 | opt_num_slots u8 |
//     opt_has_row_steps u8 | num_replica_states u64 | per replica {
//       step u64 | [has_row_steps] row-counter count u64 + raw u32 |
//       per slot: element count u64 + raw f32 } |
//   global model blob | prev-global model blob
//   (model blobs via nn::save_model, size-prefixed; always the final two
//   records, so tail-relative tooling keeps working across versions).
// Version 1 checkpoints load with an empty compression section: a
// compressed run restoring one restarts its residuals at zero with the
// default loss scale, which is a valid (if less converged) error-feedback
// state. Versions 1 and 2 load with an empty optimizer section: restoring
// one into a stateful-optimizer run resets moments/counters to zero (a
// valid fresh-start state; bit-identical resume needs a v3 checkpoint).
// All length/count fields are validated against the remaining stream size
// and every optimizer-state float must be finite — violations throw
// hetero::ParseError, never a bad_alloc or a poisoned runtime.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/adaptive_sgd.h"
#include "util/rng.h"

namespace hetero::fault {

struct TrainingCheckpoint {
  std::uint64_t seed = 0;
  std::uint64_t megabatches_completed = 0;
  std::uint64_t samples_served = 0;
  std::uint64_t round_robin_cursor = 0;
  double vtime = 0.0;
  double best_top1 = 0.0;
  std::uint64_t stagnation = 0;

  struct GpuState {
    std::uint64_t batch_size = 0;
    double learning_rate = 0.0;
    std::uint64_t updates = 0;
    std::uint8_t alive = 1;
    double busy_seconds = 0.0;
    double degraded_until = 0.0;
    std::uint64_t transient_episodes = 0;
    util::Rng::State rng;
  };
  std::vector<GpuState> gpus;

  core::ScalingSchedulerState scaling;

  // Merge-compression state (format v2; absent in v1): per-replica
  // error-feedback residuals as raw fp32 bytes plus the fp16 loss-scale
  // guard. Empty/defaulted when the run merged at fp32.
  std::uint8_t compressed = 0;
  float loss_scale = 1024.0f;
  std::uint32_t loss_scale_streak = 0;
  std::vector<std::string> residual_blobs;

  // Optimizer state (format v3; absent in v1/v2): the update rule the run
  // trained with and each replica's state matrices + lazy row counters
  // (nn/optimizer.h). For sgd the per-replica records carry only the step
  // counter (no slots, no counters).
  std::uint8_t opt_kind = 0;  // nn::OptimizerKind byte
  std::uint8_t opt_num_slots = 0;
  std::uint8_t opt_has_row_steps = 0;
  struct OptimizerReplicaState {
    std::uint64_t step = 0;
    std::vector<std::uint32_t> row_steps;   // empty unless adam/adamw
    std::vector<std::vector<float>> slots;  // flat state, one per slot
  };
  std::vector<OptimizerReplicaState> opt_replicas;

  // Serialized nn model blobs (nn::save_model format) for the global model
  // and the Algorithm-2 momentum state.
  std::string global_blob;
  std::string prev_global_blob;
};

/// Snapshots the trainer at the current merge boundary.
TrainingCheckpoint capture_checkpoint(core::AdaptiveSgdTrainer& trainer);

/// Restores a checkpoint into a FRESHLY CONSTRUCTED trainer built from the
/// same config (seed, devices, dataset). Throws std::runtime_error when the
/// checkpoint does not match (GPU count, seed, parameter count).
void restore_checkpoint(core::AdaptiveSgdTrainer& trainer,
                        const TrainingCheckpoint& ckpt);

void save_checkpoint(std::ostream& out, const TrainingCheckpoint& ckpt);

/// Deserializes an HGCK checkpoint. This is an untrusted-input path: bad
/// magic, unsupported versions, truncation, and hostile length/count fields
/// (validated against the remaining stream size before any allocation)
/// throw hetero::ParseError carrying the byte offset.
TrainingCheckpoint load_checkpoint(std::istream& in);
void save_checkpoint_file(const std::string& path,
                          const TrainingCheckpoint& ckpt);
TrainingCheckpoint load_checkpoint_file(const std::string& path);

/// Installs a boundary hook writing `path` every `every` completed
/// mega-batches (and at the final one).
void enable_periodic_checkpoint(core::AdaptiveSgdTrainer& trainer,
                                std::string path, std::size_t every);

}  // namespace hetero::fault
