#include "fault/checkpoint.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "comm/quant.h"
#include "nn/serialize.h"
#include "util/error.h"

namespace hetero::fault {

namespace {

constexpr char kMagic[4] = {'H', 'G', 'C', 'K'};
// v2 adds the merge-compression section (error-feedback residuals + fp16
// loss-scale guard) between the scaling state and the model blobs; v3 adds
// the per-replica optimizer-state section after it. v1/v2 checkpoints still
// load; their missing sections are defaulted (fresh optimizer state).
constexpr std::uint32_t kVersion = 3;

void write_bytes(std::ostream& out, const void* p, std::size_t n) {
  out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
}
void write_u8(std::ostream& out, std::uint8_t v) { write_bytes(out, &v, 1); }
void write_u32(std::ostream& out, std::uint32_t v) {
  write_bytes(out, &v, sizeof v);
}
void write_u64(std::ostream& out, std::uint64_t v) {
  write_bytes(out, &v, sizeof v);
}
void write_f64(std::ostream& out, double v) { write_bytes(out, &v, sizeof v); }
void write_blob(std::ostream& out, const std::string& blob) {
  write_u64(out, blob.size());
  write_bytes(out, blob.data(), blob.size());
}

std::size_t stream_offset(std::istream& in) {
  const auto pos = in.tellg();
  return pos == std::istream::pos_type(-1) ? ParseError::npos
                                           : static_cast<std::size_t>(pos);
}

[[noreturn]] void bad_checkpoint(std::istream& in, const std::string& what) {
  in.clear();  // tellg on a failed stream would itself fail
  throw ParseError("checkpoint", what, ParseError::npos, stream_offset(in));
}

/// Bytes between the read cursor and end-of-stream, or npos when the stream
/// is not seekable. Length/count fields are validated against this before
/// any allocation so a corrupt 2^63 length cannot drive a huge resize.
std::size_t remaining_bytes(std::istream& in) {
  const auto pos = in.tellg();
  if (pos == std::istream::pos_type(-1)) return ParseError::npos;
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.seekg(pos);
  if (end == std::istream::pos_type(-1) || end < pos) return ParseError::npos;
  return static_cast<std::size_t>(end - pos);
}

/// Validates `count` records of at least `min_record_bytes` each against the
/// remaining stream size.
void check_count(std::istream& in, std::uint64_t count,
                 std::size_t min_record_bytes, const char* what) {
  const auto remaining = remaining_bytes(in);
  if (remaining == ParseError::npos) return;  // non-seekable: cannot bound
  if (count > remaining / min_record_bytes) {
    bad_checkpoint(in, std::string(what) + " count " + std::to_string(count) +
                           " exceeds remaining stream size " +
                           std::to_string(remaining));
  }
}

void read_bytes(std::istream& in, void* p, std::size_t n) {
  in.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
  if (!in) bad_checkpoint(in, "truncated input");
}
std::uint8_t read_u8(std::istream& in) {
  std::uint8_t v;
  read_bytes(in, &v, 1);
  return v;
}
std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v;
  read_bytes(in, &v, sizeof v);
  return v;
}
std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v;
  read_bytes(in, &v, sizeof v);
  return v;
}
double read_f64(std::istream& in) {
  double v;
  read_bytes(in, &v, sizeof v);
  return v;
}
std::string read_blob(std::istream& in) {
  const auto n = read_u64(in);
  // Validate the length against the bytes actually present BEFORE the
  // resize: a corrupt/hostile length field (e.g. 2^63) must produce a typed
  // error, not a bad_alloc/length_error from a huge allocation.
  const auto remaining = remaining_bytes(in);
  if (remaining != ParseError::npos && n > remaining) {
    bad_checkpoint(in, "blob length " + std::to_string(n) +
                           " exceeds remaining stream size " +
                           std::to_string(remaining));
  }
  std::string blob(static_cast<std::size_t>(n), '\0');
  read_bytes(in, blob.data(), static_cast<std::size_t>(n));
  return blob;
}

std::string serialize_model(const nn::Model& model) {
  std::ostringstream out(std::ios::binary);
  nn::save_model(out, model);
  return out.str();
}

void copy_blob_into(const std::string& blob, nn::Model& target) {
  std::istringstream in(blob, std::ios::binary);
  const auto loaded = nn::load_any_model(in);
  if (loaded->num_parameters() != target.num_parameters()) {
    throw std::runtime_error(
        "checkpoint: model parameter count does not match runtime");
  }
  target.copy_from(*loaded);
}

}  // namespace

TrainingCheckpoint capture_checkpoint(core::AdaptiveSgdTrainer& trainer) {
  auto& runtime = trainer.runtime();
  TrainingCheckpoint ckpt;
  ckpt.seed = trainer.config().seed;
  ckpt.megabatches_completed = trainer.megabatch_index();
  ckpt.samples_served = runtime.samples_served();
  ckpt.round_robin_cursor = trainer.round_robin_cursor();
  ckpt.best_top1 = trainer.early_stop_best();
  ckpt.stagnation = trainer.early_stop_stagnation();

  double vtime = 0.0;
  for (std::size_t g = 0; g < runtime.num_gpus(); ++g) {
    vtime = std::max(vtime, runtime.gpu(g).device_free_at());
  }
  ckpt.vtime = vtime;

  const auto& sgd = trainer.sgd_state();
  ckpt.gpus.resize(runtime.num_gpus());
  for (std::size_t g = 0; g < runtime.num_gpus(); ++g) {
    auto& s = ckpt.gpus[g];
    const auto& gpu = runtime.gpu(g);
    s.batch_size = sgd[g].batch_size;
    s.learning_rate = sgd[g].learning_rate;
    s.updates = sgd[g].updates;
    s.alive = runtime.replica_alive(g) ? 1 : 0;
    s.busy_seconds = gpu.busy_seconds();
    s.degraded_until = gpu.degraded_until();
    s.transient_episodes = gpu.transient_episodes();
    s.rng = gpu.rng().state();
  }

  ckpt.scaling = trainer.scaling_scheduler().snapshot();

  if (runtime.compressed_merge()) {
    ckpt.compressed = 1;
    ckpt.loss_scale = runtime.loss_scale_guard().scale;
    ckpt.loss_scale_streak = runtime.loss_scale_guard().good_streak;
    ckpt.residual_blobs.resize(runtime.num_gpus());
    for (std::size_t g = 0; g < runtime.num_gpus(); ++g) {
      const auto res = runtime.residual_state(g);
      ckpt.residual_blobs[g].assign(
          reinterpret_cast<const char*>(res.data()),
          res.size() * sizeof(float));
    }
  }

  // Optimizer section (v3): the adaptive trainer's updates all flow through
  // the per-replica optimizers, so those states (plus kind/shape metadata)
  // are exactly what bit-identical resume needs.
  {
    auto& opt0 = runtime.optimizer(0);
    ckpt.opt_kind = static_cast<std::uint8_t>(opt0.kind());
    ckpt.opt_num_slots = static_cast<std::uint8_t>(opt0.num_slots());
    ckpt.opt_has_row_steps = opt0.row_steps().empty() ? 0 : 1;
    ckpt.opt_replicas.resize(runtime.num_gpus());
    for (std::size_t g = 0; g < runtime.num_gpus(); ++g) {
      auto& opt = runtime.optimizer(g);
      auto& s = ckpt.opt_replicas[g];
      s.step = opt.step();
      const auto steps = opt.row_steps();
      s.row_steps.assign(steps.begin(), steps.end());
      s.slots.resize(opt.num_slots());
      for (std::size_t slot = 0; slot < opt.num_slots(); ++slot) {
        auto& flat = s.slots[slot];
        for (const auto seg : opt.slot_views(slot)) {
          flat.insert(flat.end(), seg.begin(), seg.end());
        }
      }
    }
  }

  ckpt.global_blob = serialize_model(runtime.global_model());
  ckpt.prev_global_blob = serialize_model(runtime.prev_global_model());
  return ckpt;
}

void restore_checkpoint(core::AdaptiveSgdTrainer& trainer,
                        const TrainingCheckpoint& ckpt) {
  auto& runtime = trainer.runtime();
  if (ckpt.gpus.size() != runtime.num_gpus()) {
    throw std::runtime_error("checkpoint: GPU count does not match runtime");
  }
  if (ckpt.seed != trainer.config().seed) {
    throw std::runtime_error("checkpoint: seed does not match config");
  }
  if (runtime.samples_served() != 0) {
    throw std::runtime_error(
        "checkpoint: restore requires a freshly constructed trainer");
  }

  copy_blob_into(ckpt.global_blob, runtime.global_model());
  copy_blob_into(ckpt.prev_global_blob, runtime.prev_global_model());
  runtime.skip_samples(ckpt.samples_served);

  std::vector<core::GpuSgdState> sgd(ckpt.gpus.size());
  for (std::size_t g = 0; g < ckpt.gpus.size(); ++g) {
    const auto& s = ckpt.gpus[g];
    auto& gpu = runtime.gpu(g);
    gpu.rng().set_state(s.rng);
    gpu.restore_timing(ckpt.vtime, s.busy_seconds, s.degraded_until,
                       s.transient_episodes);
    runtime.set_replica_alive(g, s.alive != 0);
    sgd[g].batch_size = s.batch_size;
    sgd[g].learning_rate = s.learning_rate;
    sgd[g].updates = s.updates;
  }

  if (ckpt.compressed != 0) {
    if (!runtime.compressed_merge()) {
      throw std::runtime_error(
          "checkpoint: carries merge-compression state but the runtime "
          "merges at fp32");
    }
    if (ckpt.residual_blobs.size() != runtime.num_gpus()) {
      throw std::runtime_error(
          "checkpoint: residual count does not match runtime GPU count");
    }
    for (std::size_t g = 0; g < runtime.num_gpus(); ++g) {
      const auto res = runtime.residual_state(g);
      const auto& blob = ckpt.residual_blobs[g];
      if (blob.size() != res.size() * sizeof(float)) {
        throw std::runtime_error(
            "checkpoint: residual size does not match runtime parameter "
            "count");
      }
      std::memcpy(res.data(), blob.data(), blob.size());
    }
    auto& guard = runtime.loss_scale_guard();
    guard.scale = ckpt.loss_scale;
    guard.good_streak = ckpt.loss_scale_streak;
  } else if (runtime.compressed_merge()) {
    // An uncompressed (or v1) checkpoint restoring into a compressed
    // runtime: zero the error-feedback residuals and reset the loss-scale
    // guard explicitly rather than trusting the runtime to be untouched —
    // a valid state, the merge just re-learns the residuals.
    for (std::size_t g = 0; g < runtime.num_gpus(); ++g) {
      const auto res = runtime.residual_state(g);
      std::fill(res.begin(), res.end(), 0.0f);
    }
    runtime.loss_scale_guard() = comm::LossScaleGuard{};
  }

  if (!ckpt.opt_replicas.empty()) {
    const auto kind = nn::optimizer_kind_from_byte(ckpt.opt_kind);
    if (!kind || *kind != runtime.optimizer(0).kind()) {
      throw std::runtime_error(
          "checkpoint: optimizer kind does not match config");
    }
    if (ckpt.opt_replicas.size() != runtime.num_gpus()) {
      throw std::runtime_error(
          "checkpoint: optimizer replica count does not match runtime");
    }
    for (std::size_t g = 0; g < runtime.num_gpus(); ++g) {
      auto& opt = runtime.optimizer(g);
      const auto& s = ckpt.opt_replicas[g];
      if (s.slots.size() != opt.num_slots()) {
        throw std::runtime_error(
            "checkpoint: optimizer slot count does not match config");
      }
      const auto steps = opt.row_steps();
      if (s.row_steps.size() != steps.size()) {
        throw std::runtime_error(
            "checkpoint: optimizer row-counter count does not match model");
      }
      std::copy(s.row_steps.begin(), s.row_steps.end(), steps.begin());
      opt.set_step(s.step);
      for (std::size_t slot = 0; slot < opt.num_slots(); ++slot) {
        const auto& flat = s.slots[slot];
        auto views = opt.slot_views(slot);
        std::size_t total = 0;
        for (const auto seg : views) total += seg.size();
        if (flat.size() != total) {
          throw std::runtime_error(
              "checkpoint: optimizer state size does not match model");
        }
        std::size_t off = 0;
        for (auto seg : views) {
          std::copy(flat.begin() + static_cast<std::ptrdiff_t>(off),
                    flat.begin() + static_cast<std::ptrdiff_t>(off) +
                        static_cast<std::ptrdiff_t>(seg.size()),
                    seg.begin());
          off += seg.size();
        }
      }
    }
  } else {
    // v1/v2 checkpoint (no optimizer section): restart the moments,
    // accumulators and lazy counters from zero — explicitly, so a reused
    // trainer cannot smuggle stale state past the restore. A valid state;
    // bit-identical resume of a stateful run needs a v3 checkpoint.
    for (std::size_t g = 0; g < runtime.num_gpus(); ++g) {
      runtime.optimizer(g).reset_state();
    }
    runtime.global_optimizer().reset_state();
  }

  // At a merge boundary every alive replica holds the freshly broadcast
  // global model.
  runtime.broadcast_global();

  trainer.restore_progress(std::move(sgd), ckpt.megabatches_completed,
                           ckpt.round_robin_cursor);
  trainer.scaling_scheduler_mutable().restore(ckpt.scaling);
  trainer.set_resume_point(ckpt.megabatches_completed, ckpt.best_top1,
                           ckpt.stagnation);
}

void save_checkpoint(std::ostream& out, const TrainingCheckpoint& ckpt) {
  write_bytes(out, kMagic, 4);
  write_u32(out, kVersion);
  write_u64(out, ckpt.seed);
  write_u64(out, ckpt.megabatches_completed);
  write_u64(out, ckpt.samples_served);
  write_u64(out, ckpt.round_robin_cursor);
  write_f64(out, ckpt.vtime);
  write_f64(out, ckpt.best_top1);
  write_u64(out, ckpt.stagnation);
  write_u64(out, ckpt.gpus.size());
  for (const auto& s : ckpt.gpus) {
    write_u64(out, s.batch_size);
    write_f64(out, s.learning_rate);
    write_u64(out, s.updates);
    write_u8(out, s.alive);
    write_f64(out, s.busy_seconds);
    write_f64(out, s.degraded_until);
    write_u64(out, s.transient_episodes);
    for (auto word : s.rng.s) write_u64(out, word);
    write_f64(out, s.rng.cached_gaussian);
    write_u8(out, s.rng.has_cached_gaussian ? 1 : 0);
  }
  const auto& sc = ckpt.scaling;
  write_u64(out, sc.interval);
  write_u64(out, sc.since_last_scale);
  write_u8(out, sc.stable ? 1 : 0);
  write_u8(out, sc.oscillating ? 1 : 0);
  write_u64(out, sc.previous.size());
  for (auto v : sc.previous) write_u64(out, v);
  write_u64(out, sc.last_direction.size());
  for (auto v : sc.last_direction) {
    write_u64(out, static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
  }
  write_u64(out, sc.steps_without_change);
  write_u64(out, sc.reversal_streak);
  write_u8(out, ckpt.compressed);
  if (ckpt.compressed != 0) {
    write_f64(out, static_cast<double>(ckpt.loss_scale));
    write_u64(out, ckpt.loss_scale_streak);
    write_u64(out, ckpt.residual_blobs.size());
    for (const auto& blob : ckpt.residual_blobs) write_blob(out, blob);
  }
  write_u8(out, ckpt.opt_kind);
  write_u8(out, ckpt.opt_num_slots);
  write_u8(out, ckpt.opt_has_row_steps);
  write_u64(out, ckpt.opt_replicas.size());
  for (const auto& s : ckpt.opt_replicas) {
    write_u64(out, s.step);
    if (ckpt.opt_has_row_steps != 0) {
      write_u64(out, s.row_steps.size());
      write_bytes(out, s.row_steps.data(),
                  s.row_steps.size() * sizeof(std::uint32_t));
    }
    for (const auto& slot : s.slots) {
      write_u64(out, slot.size());
      write_bytes(out, slot.data(), slot.size() * sizeof(float));
    }
  }
  write_blob(out, ckpt.global_blob);
  write_blob(out, ckpt.prev_global_blob);
  if (!out) throw std::runtime_error("checkpoint: write failed");
}

TrainingCheckpoint load_checkpoint(std::istream& in) {
  char magic[4];
  read_bytes(in, magic, 4);
  if (std::memcmp(magic, kMagic, 4) != 0) {
    bad_checkpoint(in, "bad magic");
  }
  const auto version = read_u32(in);
  if (version < 1 || version > kVersion) {
    bad_checkpoint(in, "unsupported version " + std::to_string(version));
  }
  TrainingCheckpoint ckpt;
  ckpt.seed = read_u64(in);
  ckpt.megabatches_completed = read_u64(in);
  ckpt.samples_served = read_u64(in);
  ckpt.round_robin_cursor = read_u64(in);
  ckpt.vtime = read_f64(in);
  ckpt.best_top1 = read_f64(in);
  ckpt.stagnation = read_u64(in);
  // Each per-GPU record is at least 90 bytes on disk; a corrupt count field
  // must fail here, not in a multi-gigabyte resize.
  const auto num_gpus = read_u64(in);
  check_count(in, num_gpus, 90, "gpu");
  ckpt.gpus.resize(static_cast<std::size_t>(num_gpus));
  for (auto& s : ckpt.gpus) {
    s.batch_size = read_u64(in);
    s.learning_rate = read_f64(in);
    s.updates = read_u64(in);
    s.alive = read_u8(in);
    s.busy_seconds = read_f64(in);
    s.degraded_until = read_f64(in);
    s.transient_episodes = read_u64(in);
    for (auto& word : s.rng.s) word = read_u64(in);
    s.rng.cached_gaussian = read_f64(in);
    s.rng.has_cached_gaussian = read_u8(in) != 0;
  }
  auto& sc = ckpt.scaling;
  sc.interval = read_u64(in);
  sc.since_last_scale = read_u64(in);
  sc.stable = read_u8(in) != 0;
  sc.oscillating = read_u8(in) != 0;
  const auto num_previous = read_u64(in);
  check_count(in, num_previous, sizeof(std::uint64_t), "scaling history");
  sc.previous.resize(static_cast<std::size_t>(num_previous));
  for (auto& v : sc.previous) v = read_u64(in);
  const auto num_directions = read_u64(in);
  check_count(in, num_directions, sizeof(std::uint64_t), "scaling direction");
  sc.last_direction.resize(static_cast<std::size_t>(num_directions));
  for (auto& v : sc.last_direction) {
    v = static_cast<int>(static_cast<std::int64_t>(read_u64(in)));
  }
  sc.steps_without_change = read_u64(in);
  sc.reversal_streak = read_u64(in);
  if (version >= 2) {
    ckpt.compressed = read_u8(in);
    if (ckpt.compressed > 1) {
      bad_checkpoint(in, "invalid compressed flag " +
                             std::to_string(ckpt.compressed));
    }
    if (ckpt.compressed != 0) {
      const double scale = read_f64(in);
      if (!std::isfinite(scale) ||
          scale < static_cast<double>(comm::LossScaleGuard::kMinScale) ||
          scale > static_cast<double>(comm::LossScaleGuard::kMaxScale)) {
        bad_checkpoint(in, "loss scale out of range");
      }
      ckpt.loss_scale = static_cast<float>(scale);
      const auto streak = read_u64(in);
      ckpt.loss_scale_streak = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(streak, 0xffffffffu));
      // Each residual record is at least its 8-byte length prefix.
      const auto num_residuals = read_u64(in);
      check_count(in, num_residuals, 8, "residual");
      ckpt.residual_blobs.resize(static_cast<std::size_t>(num_residuals));
      for (auto& blob : ckpt.residual_blobs) blob = read_blob(in);
    }
  }
  if (version >= 3) {
    ckpt.opt_kind = read_u8(in);
    const auto kind = nn::optimizer_kind_from_byte(ckpt.opt_kind);
    if (!kind) {
      bad_checkpoint(in, "invalid optimizer kind " +
                             std::to_string(ckpt.opt_kind));
    }
    ckpt.opt_num_slots = read_u8(in);
    ckpt.opt_has_row_steps = read_u8(in);
    // The shape metadata is implied by the kind; hostile values fail here,
    // before any record is parsed under the wrong layout.
    std::uint8_t want_slots = 0;
    std::uint8_t want_rows = 0;
    switch (*kind) {
      case nn::OptimizerKind::kSgd:
        break;
      case nn::OptimizerKind::kAdagrad:
        want_slots = 1;
        break;
      case nn::OptimizerKind::kAdam:
      case nn::OptimizerKind::kAdamW:
        want_slots = 2;
        want_rows = 1;
        break;
    }
    if (ckpt.opt_num_slots != want_slots ||
        ckpt.opt_has_row_steps != want_rows) {
      bad_checkpoint(in, "optimizer shape metadata does not match kind " +
                             std::to_string(ckpt.opt_kind));
    }
    // Each replica record is at least its 8-byte step counter.
    const auto num_states = read_u64(in);
    check_count(in, num_states, 8, "optimizer replica");
    ckpt.opt_replicas.resize(static_cast<std::size_t>(num_states));
    for (auto& s : ckpt.opt_replicas) {
      s.step = read_u64(in);
      if (ckpt.opt_has_row_steps != 0) {
        const auto n = read_u64(in);
        check_count(in, n, sizeof(std::uint32_t), "row counter");
        s.row_steps.resize(static_cast<std::size_t>(n));
        read_bytes(in, s.row_steps.data(), s.row_steps.size() *
                                               sizeof(std::uint32_t));
      }
      s.slots.resize(ckpt.opt_num_slots);
      for (auto& slot : s.slots) {
        const auto n = read_u64(in);
        check_count(in, n, sizeof(float), "optimizer slot");
        slot.resize(static_cast<std::size_t>(n));
        read_bytes(in, slot.data(), slot.size() * sizeof(float));
        for (const float v : slot) {
          // Moments/accumulators feed divisions and square roots on the hot
          // path; a NaN/Inf smuggled through a checkpoint would poison the
          // model silently. Typed parse failure instead.
          if (!std::isfinite(v)) {
            bad_checkpoint(in, "non-finite optimizer state value");
          }
        }
      }
    }
  }
  ckpt.global_blob = read_blob(in);
  ckpt.prev_global_blob = read_blob(in);
  return ckpt;
}

void save_checkpoint_file(const std::string& path,
                          const TrainingCheckpoint& ckpt) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("checkpoint: cannot open " + path);
  save_checkpoint(out, ckpt);
}

TrainingCheckpoint load_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  return load_checkpoint(in);
}

void enable_periodic_checkpoint(core::AdaptiveSgdTrainer& trainer,
                                std::string path, std::size_t every) {
  if (every == 0) return;
  trainer.set_boundary_hook(
      [&trainer, path = std::move(path), every](std::size_t megabatch,
                                                double /*vtime*/) {
        if (megabatch % every == 0 ||
            megabatch == trainer.config().num_megabatches) {
          save_checkpoint_file(path, capture_checkpoint(trainer));
        }
      });
}

}  // namespace hetero::fault
