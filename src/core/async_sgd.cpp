#include "core/async_sgd.h"

#include <algorithm>
#include <limits>

namespace hetero::core {

AsyncSgdTrainer::AsyncSgdTrainer(const data::XmlDataset& dataset,
                                 const TrainerConfig& cfg,
                                 std::vector<sim::DeviceSpec> devices)
    : Trainer(dataset, cfg, std::move(devices)) {
  in_flight_.resize(runtime_.num_gpus());
  for (std::size_t g = 0; g < runtime_.num_gpus(); ++g) {
    gradients_.push_back(runtime_.global_model().make_workspace());
  }
}

void AsyncSgdTrainer::dispatch(std::size_t g) {
  auto& slot = in_flight_[g];
  slot.batch = runtime_.next_batch(cfg_.batch_max);
  slot.snapshot_version = global_version_;
  slot.active = true;
  // Snapshot = the current global model; the gradient is computed against
  // it right away (the math is instantaneous in virtual time; only the
  // charged kernel cost advances the clock).
  const auto stats = runtime_.global_model().compute_gradients(
      slot.batch.x, slot.batch.y, *gradients_[g]);
  runtime_.record_loss(g, stats.loss);
  slot.finish =
      runtime_.charge_step(g, slot.batch.x, runtime_.gpu_free_at(g));
}

void AsyncSgdTrainer::run_megabatch(TrainResult& result) {
  const std::size_t n = runtime_.num_gpus();
  const std::size_t mega = cfg_.megabatch_samples();
  std::vector<std::size_t> updates_this_megabatch(n, 0);

  for (std::size_t g = 0; g < n; ++g) {
    if (!in_flight_[g].active) dispatch(g);
  }

  std::size_t applied_samples = 0;
  while (applied_samples < mega) {
    // Earliest completion wins (pure event order, no barrier).
    std::size_t g = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (in_flight_[i].active && in_flight_[i].finish < best) {
        best = in_flight_[i].finish;
        g = i;
      }
    }

    auto& slot = in_flight_[g];
    // Apply the (possibly stale) gradient to the shared model.
    runtime_.global_optimizer().apply(
        runtime_.global_model(), *gradients_[g],
        static_cast<float>(cfg_.learning_rate * lr_schedule_factor()),
        static_cast<float>(cfg_.weight_decay));
    staleness_sum_ += global_version_ - slot.snapshot_version;
    ++staleness_count_;
    ++global_version_;
    applied_samples += slot.batch.x.rows();
    updates_this_megabatch[g] += 1;
    result.gpus[g].total_samples += slot.batch.x.rows();
    slot.active = false;
    dispatch(g);
  }

  for (std::size_t g = 0; g < n; ++g) {
    result.gpus[g].batch_size.push_back(cfg_.batch_max);
    result.gpus[g].updates.push_back(updates_this_megabatch[g]);
  }
  result.merges += 1;  // evaluation boundary only; no model merging happens
  result.avg_staleness =
      staleness_count_ == 0
          ? 0.0
          : static_cast<double>(staleness_sum_) /
                static_cast<double>(staleness_count_);
}

}  // namespace hetero::core
