#include "core/trainer.h"

#include <algorithm>
#include <limits>

#include "core/adaptive_sgd.h"
#include "core/async_sgd.h"
#include "core/crossbow_sma.h"
#include "core/elastic_sgd.h"
#include "core/sync_sgd.h"

namespace hetero::core {

Trainer::Trainer(const data::XmlDataset& dataset, const TrainerConfig& cfg,
                 std::vector<sim::DeviceSpec> devices)
    : runtime_(dataset, cfg, std::move(devices)), cfg_(cfg) {
  if (cfg_.batch_max == 0) {
    // Derive b_max from device memory (Section V-A): the largest power of
    // two whose per-batch training state fits on the most constrained GPU.
    std::size_t feasible = std::numeric_limits<std::size_t>::max();
    for (std::size_t g = 0; g < runtime_.num_gpus(); ++g) {
      feasible = std::min(feasible, runtime_.max_feasible_batch(g));
    }
    std::size_t b = 16;
    while (b * 2 <= feasible && b < 1024) b *= 2;
    cfg_.batch_max = b;
  }
}

double Trainer::lr_schedule_factor() const {
  if (cfg_.lr_decay_every == 0 || cfg_.lr_decay == 1.0) return 1.0;
  const auto steps = current_megabatch_ / cfg_.lr_decay_every;
  double factor = 1.0;
  for (std::size_t i = 0; i < steps; ++i) factor *= cfg_.lr_decay;
  return factor;
}

double Trainer::current_vtime() const {
  double t = 0.0;
  for (std::size_t g = 0; g < runtime_.num_gpus(); ++g) {
    t = std::max(t, runtime_.gpu(g).device_free_at());
  }
  return t;
}

void Trainer::set_resume_point(std::size_t completed, double best_top1,
                               std::size_t megabatches_without_improvement) {
  start_megabatch_ = completed;
  early_stop_best_ = best_top1;
  early_stop_stagnation_ = megabatches_without_improvement;
}

TrainResult Trainer::train() {
  TrainResult result;
  result.method = method_name();
  result.dataset = runtime_.dataset().name;
  result.num_gpus = runtime_.num_gpus();
  result.num_nodes = std::max<std::size_t>(1, cfg_.num_nodes);
  result.cpu_replicas = cfg_.cpu_replicas;
  result.gpus.resize(runtime_.num_gpus());

  on_start(result);
  // Fresh runs record the t=0 baseline; resumed runs re-record the restored
  // boundary (same model, same clock) so curve tails line up.
  runtime_.record_curve_point(result, current_vtime(), start_megabatch_, 0.0);

  if (start_megabatch_ == 0) {
    early_stop_best_ = result.curve.empty() ? 0.0 : result.curve.back().top1;
    early_stop_stagnation_ = 0;
  }
  for (std::size_t m = start_megabatch_ + 1; m <= cfg_.num_megabatches; ++m) {
    current_megabatch_ = m - 1;
    run_megabatch(result);
    const double t = current_vtime();
    runtime_.record_curve_point(result, t, m, runtime_.take_mean_loss());
    // Early-stop bookkeeping runs before the boundary hook so a checkpoint
    // written there captures this boundary's state, then break decisions
    // follow.
    const double top1 = result.curve.back().top1;
    if (top1 >= early_stop_best_ + cfg_.early_stop_delta) {
      early_stop_best_ = top1;
      early_stop_stagnation_ = 0;
    } else {
      ++early_stop_stagnation_;
    }
    if (boundary_hook_) boundary_hook_(m, t);
    if (cfg_.virtual_time_budget > 0.0 && t >= cfg_.virtual_time_budget) {
      break;
    }
    if (cfg_.early_stop_patience > 0 &&
        early_stop_stagnation_ >= cfg_.early_stop_patience) {
      break;
    }
  }

  result.total_vtime = current_vtime();
  for (std::size_t g = 0; g < runtime_.num_gpus(); ++g) {
    auto& trace = result.gpus[g];
    trace.busy_seconds = runtime_.gpu(g).busy_seconds();
    trace.total_updates = 0;
    for (auto u : trace.updates) trace.total_updates += u;
  }
  result.faults = runtime_.fault_stats();
  return result;
}

std::string to_string(Method method) {
  switch (method) {
    case Method::kAdaptive:
      return "adaptive-sgd";
    case Method::kElastic:
      return "elastic-sgd";
    case Method::kSync:
      return "sync-sgd-tf";
    case Method::kCrossbow:
      return "crossbow-sma";
    case Method::kAsync:
      return "async-sgd";
  }
  return "?";
}

std::unique_ptr<Trainer> make_trainer(Method method,
                                      const data::XmlDataset& dataset,
                                      TrainerConfig cfg,
                                      std::vector<sim::DeviceSpec> devices) {
  switch (method) {
    case Method::kAdaptive:
      return std::make_unique<AdaptiveSgdTrainer>(dataset, cfg,
                                                  std::move(devices));
    case Method::kElastic:
      return std::make_unique<ElasticSgdTrainer>(dataset, cfg,
                                                 std::move(devices));
    case Method::kSync:
      if (cfg.framework_overhead == 1.0) cfg.framework_overhead = 1.4;
      return std::make_unique<SyncSgdTrainer>(dataset, cfg,
                                              std::move(devices));
    case Method::kCrossbow:
      return std::make_unique<CrossbowTrainer>(dataset, cfg,
                                               std::move(devices));
    case Method::kAsync:
      return std::make_unique<AsyncSgdTrainer>(dataset, cfg,
                                               std::move(devices));
  }
  return nullptr;
}

}  // namespace hetero::core
