// Shared multi-GPU execution state for all HeteroGPU trainers.
//
// The runtime owns the simulated devices, the interconnect, the model
// replicas with their workspaces, the shuffled sample stream, and the
// all-reduce implementation. Trainers (Adaptive, Elastic, Sync, CROSSBOW)
// compose its primitives; this mirrors the paper implementing three of its
// four GPU baselines inside the same C++ framework so that performance
// differences come from algorithmic structure only.
//
// Time model: every primitive takes an `earliest_start` virtual time and
// returns a finish time, advancing the device's stream clocks. Real math is
// executed through the Executor (inline in deterministic mode, GPU-manager
// threads in threaded mode).
#pragma once

#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "comm/allreduce.h"
#include "core/config.h"
#include "core/executor.h"
#include "core/metrics.h"
#include "data/sample_stream.h"
#include "data/synthetic.h"
#include "nn/evaluate.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "sim/profiles.h"
#include "sim/trace.h"
#include "sim/virtual_gpu.h"
#include "sparse/sparse_gradient.h"
#include "util/kernel_context.h"

namespace hetero::core {

class MultiGpuRuntime {
 public:
  MultiGpuRuntime(const data::XmlDataset& dataset, const TrainerConfig& cfg,
                  std::vector<sim::DeviceSpec> devices);

  std::size_t num_gpus() const { return gpus_.size(); }
  const TrainerConfig& config() const { return cfg_; }
  const data::XmlDataset& dataset() const { return dataset_; }
  /// Architecture of the (polymorphic) model being trained.
  const nn::ModelInfo& model_info() const { return global_->info(); }

  sim::VirtualGpu& gpu(std::size_t g) { return *gpus_[g]; }
  const sim::VirtualGpu& gpu(std::size_t g) const { return *gpus_[g]; }
  nn::Model& replica(std::size_t g) { return *replicas_[g]; }
  nn::ModelWorkspace& workspace(std::size_t g) { return *workspaces_[g]; }

  /// Replica g's update rule + state (cfg.optimizer). Trainers whose
  /// replicas advance independently (adaptive/elastic via run_update_step,
  /// CROSSBOW via its SMA loop) apply updates through these; the moment
  /// merge policy (cfg.moment_merge) acts on them at merge boundaries.
  nn::Optimizer& optimizer(std::size_t g) { return *optimizers_[g]; }
  const nn::Optimizer& optimizer(std::size_t g) const {
    return *optimizers_[g];
  }

  /// Shared update rule + state for the global model: the
  /// gradient-aggregating trainers (sync, async, parameter server) apply
  /// their aggregated gradients through this one.
  nn::Optimizer& global_optimizer() { return *global_optimizer_; }
  const nn::Optimizer& global_optimizer() const { return *global_optimizer_; }

  /// Sets the kernel worker count for virtual GPU g's training-step math
  /// (bounded by cfg.kernel_threads, which sizes the shared pool). Lets
  /// heterogeneous simulations give fast devices more CPU workers.
  void set_kernel_threads(std::size_t g, std::size_t n);

  /// Earliest time device g can accept new work (compute stream), pushed
  /// past any stall window; +infinity when the device is dead by then.
  double gpu_free_at(std::size_t g) const;

  /// Index of the alive device that becomes free first (dynamic
  /// scheduling). Stalled devices are considered at their post-stall
  /// availability; dead or not-yet-joined replicas are skipped entirely.
  /// Throws std::runtime_error when no alive device can accept work.
  std::size_t next_free_gpu() const;

  /// True when replica g can be dispatched to: a merge-group member whose
  /// device will accept work at some finite time.
  bool schedulable(std::size_t g) const {
    return replica_alive(g) && gpu_free_at(g) <
                                   std::numeric_limits<double>::infinity();
  }

  // --- elastic membership (fault subsystem) ----------------------------------

  /// True when replica g is a member of the merge group. Membership
  /// shrinks/grows only at merge boundaries (apply_crashes_until /
  /// apply_joins_until); the device-level kill takes effect immediately.
  bool replica_alive(std::size_t g) const { return alive_[g] != 0; }
  std::size_t num_alive() const;

  /// Overrides a replica's membership flag directly (checkpoint restore).
  void set_replica_alive(std::size_t g, bool alive) {
    alive_[g] = alive ? 1 : 0;
  }

  /// Schedules replica g to leave the merge group: the device stops
  /// accepting new work at `time` (kill armed immediately on the virtual
  /// timeline); the membership flag flips at the next merge boundary and
  /// the replica's pending updates are dropped.
  void schedule_crash(std::size_t g, double time);

  /// Schedules replica g to re-enter the group at `time`: applied at the
  /// first merge boundary at or after `time`, seeding the replica from the
  /// merged global model with update count 0.
  void schedule_join(std::size_t g, double time);

  bool has_fault_schedule() const {
    return !pending_crashes_.empty() || !pending_joins_.empty();
  }

  /// Applies scheduled crashes with event time <= t: marks the replicas
  /// dead and drops their pending merge state (touched-row unions, loss
  /// slots). Call after math_barrier(), before computing merge weights.
  /// Returns the replica indices crashed by this call; each event fires
  /// once.
  std::vector<std::size_t> apply_crashes_until(double t);

  /// Applies scheduled joins with event time <= t: revives the device at
  /// `t` (the admitting merge boundary) and seeds the replica from the
  /// global model. Call after merge_and_update(); the trainer resets the
  /// replica's SGD state (update count 0). Returns the indices joined.
  std::vector<std::size_t> apply_joins_until(double t);

  FaultStats& fault_stats() { return fault_stats_; }
  const FaultStats& fault_stats() const { return fault_stats_; }

  /// Previous global model (Algorithm 2 momentum state) — checkpointed
  /// alongside the global model for bit-identical recovery.
  nn::Model& prev_global_model() { return *prev_global_; }
  const nn::Model& prev_global_model() const { return *prev_global_; }

  /// Fast-forwards the sample stream without materializing ids
  /// (checkpoint resume).
  void skip_samples(std::size_t n) { stream_.skip(n); }

  // --- batches ---------------------------------------------------------------

  struct Batch {
    sparse::CsrMatrix x;
    sparse::CsrMatrix y;
  };

  /// Draws the next `n` samples from the shuffled stream.
  Batch next_batch(std::size_t n);

  std::size_t samples_served() const { return stream_.samples_served(); }
  double passes() const {
    return static_cast<double>(stream_.samples_served()) /
           static_cast<double>(stream_.dataset_size());
  }

  // --- execution primitives ---------------------------------------------------

  /// One SGD step on replica g (forward+backward+update with lr). Charges
  /// the batch host->GPU transfer (overlapped with previous compute) and
  /// the kernel sequence; dispatches the real math to g's manager.
  /// Returns the virtual finish time. The batch is retained as g's
  /// `last_batch` until the next step on g.
  double run_update_step(std::size_t g, Batch batch, double lr,
                         double earliest_start);

  /// Gradient-only step (no model update): used by gradient-aggregation and
  /// CROSSBOW trainers. Gradients are left in workspace(g).
  double run_gradient_step(std::size_t g, Batch batch, double earliest_start);

  const Batch& last_batch(std::size_t g) const { return *last_batch_[g]; }

  /// Bytes of the model as charged to the interconnect: the parameter
  /// buffer times cfg.comm_scale. All communication costs (all-reduce,
  /// host round trips) use this size.
  std::size_t virtual_model_bytes() const {
    return virtual_payload_bytes(global_->num_parameters());
  }

  /// Interconnect charge for an arbitrary parameter count (the delta merge
  /// charges only touched-rows x hidden + the dense tail).
  std::size_t virtual_payload_bytes(std::size_t params) const {
    return static_cast<std::size_t>(
        static_cast<double>(params * sizeof(float)) * cfg_.comm_scale);
  }

  /// True when merges ship compressed payloads (cfg.merge_precision !=
  /// fp32): per-replica error-feedback residuals and the loss-scale guard
  /// are live state.
  bool compressed_merge() const {
    return cfg_.merge_precision != comm::MergePrecision::kFp32;
  }

  /// Wire description (element data + compression metadata, both scaled by
  /// comm_scale) of a payload of `params` parameters carrying `groups`
  /// quantization scale groups under cfg.merge_precision. fp32 reproduces
  /// virtual_payload_bytes exactly (cast included) so uncompressed billing
  /// stays bit-identical.
  comm::WirePayload virtual_wire(std::size_t params, std::size_t groups) const;

  /// virtual_wire for the whole model under the dense 512-block grouping —
  /// the cost-only transfer size for trainers that bill model-sized
  /// exchanges (sync, CROSSBOW, parameter server) without running the
  /// quantized merge math.
  comm::WirePayload virtual_model_wire() const;

  /// Per-replica error-feedback residual (flat model layout; empty when the
  /// merge is uncompressed). Exposed for checkpointing and tests.
  std::span<float> residual_state(std::size_t g) {
    return residual_.empty() ? std::span<float>{}
                             : std::span<float>(residual_[g]);
  }
  std::span<const float> residual_state(std::size_t g) const {
    return residual_.empty() ? std::span<const float>{}
                             : std::span<const float>(residual_[g]);
  }

  /// fp16 dynamic loss-scale state (checkpointed with the residuals).
  comm::LossScaleGuard& loss_scale_guard() { return loss_scale_; }
  const comm::LossScaleGuard& loss_scale_guard() const { return loss_scale_; }

  /// Cost-only step accounting: charges device g for the batch transfer and
  /// the kernel sequence of one SGD step over `x`, without running any
  /// math. Trainers that manage model math themselves (gradient
  /// aggregation, CROSSBOW) use this together with nn:: functions.
  double charge_step(std::size_t g, const sparse::CsrMatrix& x,
                     double earliest_start);

  /// Dispatches arbitrary math to device g's manager (FIFO per device).
  void dispatch_math(std::size_t g, std::function<void()> work) {
    executor_->dispatch(g, std::move(work));
  }

  /// Waits for all in-flight math (threaded mode) — must be called before
  /// the scheduler reads replica state.
  void math_barrier() { executor_->barrier(); }

  /// Mean training loss accumulated since the last take_mean_loss() call.
  /// (Slots are written by manager threads; read only after math_barrier().)
  double take_mean_loss();

  /// Records a step loss against device g's slot (for trainers that run
  /// their math through dispatch_math). Call only from g's manager work.
  void record_loss(std::size_t g, double loss) {
    loss_slots_[g].sum += loss;
    loss_slots_[g].count += 1;
  }

  // --- merging -----------------------------------------------------------------

  struct MergeTiming {
    double allreduce_seconds = 0.0;
    double host_roundtrip_seconds = 0.0;
    double finish = 0.0;  // virtual time when all GPUs hold the new model
    // Diagnostics: W1 rows in the cross-replica touched union (delta merges
    // only; 0 in dense mode) and the logical bytes charged to the
    // collective (delta bytes when sparse_merge is on, model bytes
    // otherwise).
    std::size_t touched_rows = 0;
    double payload_bytes = 0.0;
    // Total bytes on the wire: payload_bytes plus compression metadata
    // (scales, header, loss scale). Equals payload_bytes for fp32 merges.
    double wire_bytes = 0.0;
  };

  /// Merges replicas with the given weights via the configured all-reduce,
  /// applies the momentum global update on the host (the scheduler-side
  /// choice of Section IV), and broadcasts the new global model to every
  /// alive replica; alive devices synchronize their clocks to `finish`.
  ///
  /// `weights` is always full-size (one entry per replica); only alive
  /// replicas participate — their weight entries are compacted in replica
  /// index order, so the accumulation is bit-identical to a run over the
  /// survivor set alone. Dead replicas' entries must be 0 (see
  /// expand_alive_weights). The all-reduce topology/cost and the per-merge
  /// payload are re-derived over the alive subset.
  MergeTiming merge_and_update(std::span<const double> weights,
                               double sync_time);

  /// The current global model (host copy).
  const nn::Model& global_model() const { return *global_; }
  nn::Model& global_model() { return *global_; }

  /// Copies the global model into every replica (used at initialization and
  /// by trainers that keep identical replicas).
  void broadcast_global();

  /// Replica -> host model transfer cost (e.g. sync SGD publishing state).
  double host_roundtrip_seconds() const;

  /// Same, for an explicit payload size (delta merges round-trip only the
  /// touched rows plus the dense tail).
  double host_roundtrip_seconds(std::size_t bytes) const;

  // --- evaluation -----------------------------------------------------------------

  /// Evaluates the global model on the test prefix and appends a curve
  /// point to `result`.
  void record_curve_point(TrainResult& result, double vtime,
                          std::size_t megabatch, double train_loss) const;

  /// Largest batch size that fits in device memory next to the model and
  /// gradients at virtual time `at` (used to validate b_max and to re-clamp
  /// after a simulated OOM under a memory-cap window).
  std::size_t max_feasible_batch(std::size_t g, double at = 0.0) const;

  const comm::AllReducer& reducer() const { return *reducer_; }
  const sim::LinkModel& links() const { return links_; }

  /// Attaches a tracer: subsequent steps and merges are recorded on the
  /// virtual timeline (Chrome trace format via sim::Tracer). Pass nullptr
  /// to detach. The tracer must outlive the runtime.
  void set_tracer(sim::Tracer* tracer) { tracer_ = tracer; }
  sim::Tracer* tracer() { return tracer_; }

  /// Fired at the end of every merge_and_update, after the momentum global
  /// update and broadcast, with the new global model and the boundary's
  /// virtual finish time. This is the serving publication point
  /// (serve::SnapshotStore::publish): the model passed is exactly the
  /// state a checkpoint captured at the same boundary would serialize.
  /// Runs on the training thread — keep it cheap (a clone + swap).
  /// Distinct from the Trainer boundary hook so checkpointing and serving
  /// can coexist. Pass nullptr to detach.
  using PublishHook = std::function<void(const nn::Model&, double vtime)>;
  void set_publish_hook(PublishHook hook) { publish_hook_ = std::move(hook); }

 private:
  const data::XmlDataset& dataset_;
  TrainerConfig cfg_;

  std::vector<std::unique_ptr<sim::VirtualGpu>> gpus_;
  sim::LinkModel links_;
  std::unique_ptr<comm::AllReducer> reducer_;
  std::unique_ptr<Executor> executor_;
  // Shared kernel pool for the replicas' compute kernels (null when
  // cfg.kernel_threads resolves to 1); workspaces hold Contexts into it.
  std::unique_ptr<util::ThreadPool> kernel_pool_;

  // Polymorphic model state (nn::make_model from cfg.model_kind): the
  // runtime never names a concrete architecture.
  std::unique_ptr<nn::Model> global_;
  // Previous global model for the momentum term (Algorithm 2 line 8); kept
  // as a model so the merge runs segment-wise in place — no flat staging
  // buffers on the merge path.
  std::unique_ptr<nn::Model> prev_global_;

  std::vector<std::unique_ptr<nn::Model>> replicas_;
  std::vector<std::unique_ptr<nn::ModelWorkspace>> workspaces_;
  // Update rules + state (cfg.optimizer): one per replica plus one for the
  // global model. Crash/join always resets the affected replica's state
  // (moments describing a dead replica's trajectory are meaningless to the
  // fresh seed); merge boundaries apply cfg.moment_merge.
  std::vector<std::unique_ptr<nn::Optimizer>> optimizers_;
  std::unique_ptr<nn::Optimizer> global_optimizer_;

  // Merge-boundary optimizer-state policy (cfg.moment_merge, DESIGN.md
  // §11) over the alive subset; uses merge_rows_scratch_ (the current
  // touched union) for segment 0 when sparse_merge is on. Returns the
  // fp32 element count shipped for the state exchange (0 for keep/reset
  // and for stateless optimizers).
  std::size_t merge_optimizer_state(std::span<const std::size_t> alive_idx,
                                    std::span<const double> alive_weights);
  // Shared ownership: in threaded mode the manager's work item must keep
  // its batch alive even after the scheduler dispatches the next one.
  std::vector<std::shared_ptr<Batch>> last_batch_;

  data::SampleStream stream_;

  // Delta-merge state (cfg.sparse_merge): per-replica mega-batch unions of
  // touched W1 rows, written by each GPU's manager inside its dispatched
  // step and read by the scheduler after math_barrier(); plus the
  // cross-replica union + sorted scratch used during the merge.
  std::vector<sparse::RowSet> touched_w1_;
  sparse::RowSet merge_union_;
  std::vector<std::uint32_t> merge_rows_scratch_;
  // Context for the merge kernels (scheduler-side, whole pool).
  kernels::Context merge_ctx_;

  // Merge-payload compression state (cfg.merge_precision != kFp32).
  // Residuals live in the flat model layout (segment concatenation order),
  // one buffer per replica, so untouched W1 rows keep their pending
  // correction across merges whose unions differ. Scratch holds the
  // per-replica packed code/scale regions of the current merge.
  std::vector<std::vector<float>> residual_;
  comm::LossScaleGuard loss_scale_;
  std::vector<std::size_t> seg_offset_;  // flat offset of each segment
  std::vector<std::vector<std::uint16_t>> q16_scratch_;
  std::vector<std::vector<std::int8_t>> q8_scratch_;
  std::vector<std::vector<float>> scale_scratch_;
  // Quantization group table of the current merge; see
  // build_quant_groups(). One entry per scale group (a union W1 row or a
  // 512-block of a dense segment), addressing the group three ways: by
  // model segment (seg/off — replica and global reads), by flat model
  // offset (flat — the residual buffers), and by packed code offset (dst —
  // the code/scale scratch).
  struct QuantGroup {
    std::size_t seg = 0;
    std::size_t off = 0;   // offset within segment `seg`
    std::size_t flat = 0;  // residual (flat model) offset
    std::size_t dst = 0;   // packed code offset
    std::size_t len = 0;
  };
  std::vector<QuantGroup> quant_groups_;
  std::size_t model_groups_ = 0;  // dense 512-block group count, full model

  // Builds quant_groups_ for the current merge region and returns the total
  // element count. Sparse mode: one group per union W1 row (width = hidden)
  // followed by 512-blocks of the dense tail segments; dense mode:
  // 512-blocks of every segment.
  std::size_t build_quant_groups(std::span<const std::uint32_t> union_rows,
                                 std::size_t hidden);

  // Loss accumulation (slot per GPU; written only by that GPU's manager —
  // cache-line padded so adjacent slots never false-share across managers).
  struct alignas(64) LossSlot {
    double sum = 0.0;
    std::size_t count = 0;
  };
  std::vector<LossSlot> loss_slots_;

  // Elastic membership: per-replica alive flags plus the crash/join
  // schedule (kept sorted by time; cursors make each event fire once).
  struct MembershipEvent {
    std::size_t device = 0;
    double time = 0.0;
  };
  std::vector<char> alive_;
  std::vector<MembershipEvent> pending_crashes_;
  std::vector<MembershipEvent> pending_joins_;
  std::size_t crash_cursor_ = 0;
  std::size_t join_cursor_ = 0;
  std::vector<double> crash_time_;  // last applied crash per device
  FaultStats fault_stats_;

  sim::Tracer* tracer_ = nullptr;
  PublishHook publish_hook_;
};

}  // namespace hetero::core
