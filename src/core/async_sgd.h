// Fully asynchronous SGD baseline (Section II): a Hogwild-style shared
// global model with no synchronization barriers. Every GPU repeatedly
// (1) snapshots the current global model, (2) computes a gradient from its
// next batch against that snapshot, and (3) applies the gradient to the
// global model whenever it finishes — by which time other GPUs may have
// already moved the model (gradient staleness). The paper notes this
// "can result in poor convergence" over long runs; the staleness statistics
// recorded here let the benches quantify that.
//
// Scheduling is a pure discrete-event loop over per-GPU completion times:
// no mega-batch barrier exists, mega-batches are only evaluation
// boundaries.
#pragma once

#include <memory>

#include "core/trainer.h"

namespace hetero::core {

class AsyncSgdTrainer final : public Trainer {
 public:
  AsyncSgdTrainer(const data::XmlDataset& dataset, const TrainerConfig& cfg,
                  std::vector<sim::DeviceSpec> devices);

  std::string method_name() const override { return "async-sgd"; }

 protected:
  void run_megabatch(TrainResult& result) override;

 private:
  struct InFlight {
    bool active = false;
    double finish = 0.0;
    std::size_t snapshot_version = 0;  // updates applied when dispatched
    MultiGpuRuntime::Batch batch;
  };

  void dispatch(std::size_t g);

  std::vector<InFlight> in_flight_;
  // One pending gradient per GPU, staged in model-created workspaces.
  std::vector<std::unique_ptr<nn::ModelWorkspace>> gradients_;
  std::size_t global_version_ = 0;        // total updates applied
  std::size_t staleness_sum_ = 0;
  std::size_t staleness_count_ = 0;
};

}  // namespace hetero::core
