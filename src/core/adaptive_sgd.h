// Adaptive SGD (Section III) — the paper's contribution.
//
// Per mega-batch:
//   1. Dynamic scheduling: batches are dispatched one-by-one to whichever
//      GPU becomes available first, each GPU using its own batch size b_i
//      and learning rate lr_i, until the mega-batch's sample quota is
//      consumed. Faulted devices are handled inline: a simulated OOM clamps
//      the replica's batch to the largest size that fits (the b_max rule
//      applied downward), a crashed device's in-flight batch is dropped.
//   2. Normalized model merging (Algorithm 2): replica weights from update
//      counts / batch sizes, perturbed when all replicas are
//      well-regularized; weighted all-reduce; momentum global update at the
//      scheduler. With elastic membership the weights are computed over the
//      alive replica set only and renormalized there.
//   3. Batch size scaling (Algorithm 1): b_i and lr_i move toward the
//      steady state where every GPU performs the same number of updates.
//      Replicas joining at this boundary restart at b_max afterwards.
#pragma once

#include "core/batch_scaling.h"
#include "core/trainer.h"

namespace hetero::core {

class AdaptiveSgdTrainer final : public Trainer {
 public:
  AdaptiveSgdTrainer(const data::XmlDataset& dataset, const TrainerConfig& cfg,
                     std::vector<sim::DeviceSpec> devices);

  std::string method_name() const override { return "adaptive-sgd"; }

  /// Current per-GPU SGD state (exposed for tests / Fig. 6a traces).
  const std::vector<GpuSgdState>& sgd_state() const { return sgd_; }

  /// Scaling cadence state (only meaningful with
  /// cfg.adaptive_scaling_cadence).
  const ScalingScheduler& scaling_scheduler() const { return scheduler_; }

  // --- checkpointed recovery (fault subsystem) ---------------------------------
  std::size_t megabatch_index() const { return megabatch_index_; }
  std::size_t round_robin_cursor() const { return round_robin_cursor_; }
  ScalingScheduler& scaling_scheduler_mutable() { return scheduler_; }

  /// Restores the per-GPU SGD states and loop counters captured in a
  /// checkpoint; pair with Trainer::set_resume_point.
  void restore_progress(std::vector<GpuSgdState> sgd,
                        std::size_t megabatch_index, std::size_t cursor);

 protected:
  void run_megabatch(TrainResult& result) override;

 private:
  /// Warmup multiplier for the upcoming mega-batch (1.0 when disabled).
  double warmup_factor() const;

  /// Shrinks GPU g's batch to the largest power of two that fits its
  /// memory at its current clock (learning rate follows the linear scaling
  /// rule). Returns false when no smaller batch exists.
  bool clamp_batch_to_memory(std::size_t g);

  std::vector<GpuSgdState> sgd_;
  ScalingScheduler scheduler_;
  std::size_t megabatch_index_ = 0;
  std::size_t round_robin_cursor_ = 0;  // used when dynamic_scheduling=false
};

}  // namespace hetero::core
