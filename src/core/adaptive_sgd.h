// Adaptive SGD (Section III) — the paper's contribution.
//
// Per mega-batch:
//   1. Dynamic scheduling: batches are dispatched one-by-one to whichever
//      GPU becomes available first, each GPU using its own batch size b_i
//      and learning rate lr_i, until the mega-batch's sample quota is
//      consumed.
//   2. Normalized model merging (Algorithm 2): replica weights from update
//      counts / batch sizes, perturbed when all replicas are
//      well-regularized; weighted all-reduce; momentum global update at the
//      scheduler.
//   3. Batch size scaling (Algorithm 1): b_i and lr_i move toward the
//      steady state where every GPU performs the same number of updates.
#pragma once

#include "core/batch_scaling.h"
#include "core/trainer.h"

namespace hetero::core {

class AdaptiveSgdTrainer final : public Trainer {
 public:
  AdaptiveSgdTrainer(const data::XmlDataset& dataset, const TrainerConfig& cfg,
                     std::vector<sim::DeviceSpec> devices);

  std::string method_name() const override { return "adaptive-sgd"; }

  /// Current per-GPU SGD state (exposed for tests / Fig. 6a traces).
  const std::vector<GpuSgdState>& sgd_state() const { return sgd_; }

  /// Scaling cadence state (only meaningful with
  /// cfg.adaptive_scaling_cadence).
  const ScalingScheduler& scaling_scheduler() const { return scheduler_; }

 protected:
  void run_megabatch(TrainResult& result) override;

 private:
  /// Warmup multiplier for the upcoming mega-batch (1.0 when disabled).
  double warmup_factor() const;

  std::vector<GpuSgdState> sgd_;
  ScalingScheduler scheduler_;
  std::size_t megabatch_index_ = 0;
  std::size_t round_robin_cursor_ = 0;  // used when dynamic_scheduling=false
};

}  // namespace hetero::core
