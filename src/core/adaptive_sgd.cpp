#include "core/adaptive_sgd.h"

#include <algorithm>

#include "core/merging.h"
#include "util/logging.h"

namespace hetero::core {

AdaptiveSgdTrainer::AdaptiveSgdTrainer(const data::XmlDataset& dataset,
                                       const TrainerConfig& cfg,
                                       std::vector<sim::DeviceSpec> devices)
    : Trainer(dataset, cfg, std::move(devices)) {
  sgd_.resize(runtime_.num_gpus());
  for (auto& s : sgd_) {
    // The initial batch size is b_max, chosen to maximize GPU utilization
    // (Section V-A); lr is the optimal rate for b_max.
    s.batch_size = cfg_.batch_max;
    s.learning_rate = cfg_.learning_rate;
  }
}

double AdaptiveSgdTrainer::warmup_factor() const {
  if (cfg_.warmup_megabatches == 0 ||
      megabatch_index_ >= cfg_.warmup_megabatches) {
    return 1.0;
  }
  return static_cast<double>(megabatch_index_ + 1) /
         static_cast<double>(cfg_.warmup_megabatches);
}

void AdaptiveSgdTrainer::run_megabatch(TrainResult& result) {
  const std::size_t n = runtime_.num_gpus();
  const std::size_t mega = cfg_.megabatch_samples();
  const double warmup = warmup_factor() * lr_schedule_factor();

  for (auto& s : sgd_) s.updates = 0;

  // --- dynamic scheduling ---------------------------------------------------
  std::size_t assigned = 0;
  while (assigned < mega) {
    const std::size_t g = cfg_.dynamic_scheduling
                              ? runtime_.next_free_gpu()
                              : (round_robin_cursor_++ % n);
    const std::size_t b =
        std::min<std::size_t>(sgd_[g].batch_size, mega - assigned);
    auto batch = runtime_.next_batch(b);
    runtime_.run_update_step(g, std::move(batch),
                             sgd_[g].learning_rate * warmup,
                             runtime_.gpu_free_at(g));
    sgd_[g].updates += 1;
    result.gpus[g].total_samples += b;
    assigned += b;
  }

  // Synchronization point: merging starts when the last replica finishes.
  double sync = 0.0;
  for (std::size_t g = 0; g < n; ++g) {
    sync = std::max(sync, runtime_.gpu(g).device_free_at());
  }
  runtime_.math_barrier();

  // --- normalized model merging (Algorithm 2) ---------------------------------
  MergeInputs inputs;
  inputs.pert_threshold = cfg_.pert_threshold;
  inputs.pert_delta = cfg_.pert_delta;
  inputs.enable_perturbation = cfg_.enable_perturbation;
  inputs.normalization = cfg_.merge_normalization;
  for (std::size_t g = 0; g < n; ++g) {
    inputs.updates.push_back(sgd_[g].updates);
    inputs.batch_sizes.push_back(sgd_[g].batch_size);
    inputs.l2_per_param.push_back(runtime_.replica(g).l2_norm_per_parameter());
  }
  const auto weights = compute_merge_weights(inputs);
  const auto timing = runtime_.merge_and_update(weights.alpha, sync);

  result.merges += 1;
  if (weights.perturbed) result.perturbed_merges += 1;
  result.comm_seconds +=
      timing.allreduce_seconds + timing.host_roundtrip_seconds;

  // --- batch size scaling (Algorithm 1) -----------------------------------------
  // Record the batch size used DURING this mega-batch (Fig. 6a traces the
  // evolution across mega-batches), then scale for the next one.
  for (std::size_t g = 0; g < n; ++g) {
    result.gpus[g].batch_size.push_back(sgd_[g].batch_size);
    result.gpus[g].updates.push_back(sgd_[g].updates);
  }
  bool scale_now = cfg_.enable_batch_scaling;
  if (scale_now && cfg_.adaptive_scaling_cadence) {
    std::vector<std::size_t> current;
    current.reserve(n);
    for (const auto& s : sgd_) current.push_back(s.batch_size);
    scale_now = scheduler_.observe(current);
  }
  if (scale_now) {
    BatchScalingParams params;
    params.batch_min = cfg_.derived_batch_min();
    params.batch_max = cfg_.batch_max;
    params.beta = cfg_.derived_beta();
    const auto outcome = scale_batch_sizes(sgd_, params);
    if (outcome.any_change) result.scaling_updates += 1;
    HETERO_DEBUG << method_name() << ": mega-batch " << result.merges
                 << " mean updates " << outcome.mean_updates
                 << (weights.perturbed ? " [perturbed]" : "");
  }
  ++megabatch_index_;
}

}  // namespace hetero::core
