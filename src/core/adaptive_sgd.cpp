#include "core/adaptive_sgd.h"

#include <algorithm>
#include <stdexcept>

#include "core/merging.h"
#include "util/logging.h"

namespace hetero::core {

AdaptiveSgdTrainer::AdaptiveSgdTrainer(const data::XmlDataset& dataset,
                                       const TrainerConfig& cfg,
                                       std::vector<sim::DeviceSpec> devices)
    : Trainer(dataset, cfg, std::move(devices)) {
  sgd_.resize(runtime_.num_gpus());
  for (auto& s : sgd_) {
    // The initial batch size is b_max, chosen to maximize GPU utilization
    // (Section V-A); lr is the optimal rate for b_max.
    s.batch_size = cfg_.batch_max;
    s.learning_rate = cfg_.learning_rate;
  }
}

double AdaptiveSgdTrainer::warmup_factor() const {
  if (cfg_.warmup_megabatches == 0 ||
      megabatch_index_ >= cfg_.warmup_megabatches) {
    return 1.0;
  }
  return static_cast<double>(megabatch_index_ + 1) /
         static_cast<double>(cfg_.warmup_megabatches);
}

void AdaptiveSgdTrainer::restore_progress(std::vector<GpuSgdState> sgd,
                                          std::size_t megabatch_index,
                                          std::size_t cursor) {
  if (sgd.size() != runtime_.num_gpus()) {
    throw std::runtime_error(
        "adaptive-sgd: checkpoint GPU count does not match runtime");
  }
  sgd_ = std::move(sgd);
  megabatch_index_ = megabatch_index;
  round_robin_cursor_ = cursor;
}

bool AdaptiveSgdTrainer::clamp_batch_to_memory(std::size_t g) {
  const std::size_t old_b = sgd_[g].batch_size;
  std::size_t feasible = std::min(
      runtime_.max_feasible_batch(g, runtime_.gpu_free_at(g)), cfg_.batch_max);
  if (feasible == 0) return false;
  std::size_t b = 1;
  while (b * 2 <= feasible) b *= 2;
  if (b >= old_b) return false;
  sgd_[g].learning_rate *=
      static_cast<double>(b) / static_cast<double>(old_b);  // linear scaling
  sgd_[g].batch_size = b;
  runtime_.fault_stats().oom_clamps += 1;
  HETERO_DEBUG << method_name() << ": gpu" << g << " OOM, batch " << old_b
               << " -> " << b;
  return true;
}

void AdaptiveSgdTrainer::run_megabatch(TrainResult& result) {
  const std::size_t n = runtime_.num_gpus();
  const std::size_t mega = cfg_.megabatch_samples();
  const double warmup = warmup_factor() * lr_schedule_factor();

  for (auto& s : sgd_) s.updates = 0;

  // --- dynamic scheduling ---------------------------------------------------
  std::size_t assigned = 0;
  while (assigned < mega) {
    std::size_t g;
    if (cfg_.dynamic_scheduling) {
      g = runtime_.next_free_gpu();
    } else {
      std::size_t tried = 0;
      do {
        g = round_robin_cursor_++ % n;
      } while (!runtime_.schedulable(g) && ++tried < n);
      if (!runtime_.schedulable(g)) {
        throw std::runtime_error(
            "adaptive-sgd: no alive schedulable device");
      }
    }
    const std::size_t b =
        std::min<std::size_t>(sgd_[g].batch_size, mega - assigned);
    auto batch = runtime_.next_batch(b);
    try {
      runtime_.run_update_step(g, std::move(batch),
                               sgd_[g].learning_rate * warmup,
                               runtime_.gpu_free_at(g));
    } catch (const sim::OutOfDeviceMemory&) {
      // The batch's samples are consumed but not learned from; the replica
      // retries subsequent dispatches at the clamped size (b_max rule).
      assigned += b;
      if (!clamp_batch_to_memory(g)) throw;
      continue;
    } catch (const sim::DeviceUnavailable&) {
      // Crashed mid-mega-batch: its in-flight batch is lost, membership is
      // updated at the merge boundary below.
      assigned += b;
      continue;
    }
    sgd_[g].updates += 1;
    result.gpus[g].total_samples += b;
    assigned += b;
  }

  // Synchronization point: merging starts when the last surviving replica
  // finishes. Crash membership flips here — at the merge boundary — after
  // all in-flight math has drained.
  double all_free = 0.0;
  for (std::size_t g = 0; g < n; ++g) {
    all_free = std::max(all_free, runtime_.gpu(g).device_free_at());
  }
  runtime_.math_barrier();
  runtime_.apply_crashes_until(all_free);

  double sync = 0.0;
  std::vector<std::size_t> alive;
  alive.reserve(n);
  for (std::size_t g = 0; g < n; ++g) {
    if (!runtime_.replica_alive(g)) continue;
    alive.push_back(g);
    sync = std::max(sync, runtime_.gpu(g).device_free_at());
  }
  if (alive.empty()) {
    throw std::runtime_error("adaptive-sgd: all replicas crashed");
  }

  // --- normalized model merging (Algorithm 2) ---------------------------------
  // Weights are computed over the alive set only (Algorithm 2 renormalizes
  // across survivors); a crashed replica's pending updates are dropped.
  MergeInputs inputs;
  inputs.pert_threshold = cfg_.pert_threshold;
  inputs.pert_delta = cfg_.pert_delta;
  inputs.enable_perturbation = cfg_.enable_perturbation;
  inputs.normalization = cfg_.merge_normalization;
  for (std::size_t g : alive) {
    inputs.updates.push_back(sgd_[g].updates);
    inputs.batch_sizes.push_back(sgd_[g].batch_size);
    inputs.l2_per_param.push_back(runtime_.replica(g).l2_norm_per_parameter());
  }
  const auto weights = compute_merge_weights(inputs);
  const auto full =
      expand_alive_weights(weights.alpha, alive, runtime_.num_gpus());
  const auto timing = runtime_.merge_and_update(full, sync);

  result.merges += 1;
  if (weights.perturbed) result.perturbed_merges += 1;
  result.comm_seconds +=
      timing.allreduce_seconds + timing.host_roundtrip_seconds;

  // --- batch size scaling (Algorithm 1) -----------------------------------------
  // Record the batch size used DURING this mega-batch (Fig. 6a traces the
  // evolution across mega-batches), then scale for the next one.
  for (std::size_t g = 0; g < n; ++g) {
    result.gpus[g].batch_size.push_back(sgd_[g].batch_size);
    result.gpus[g].updates.push_back(sgd_[g].updates);
  }
  bool scale_now = cfg_.enable_batch_scaling;
  if (scale_now && cfg_.adaptive_scaling_cadence) {
    std::vector<std::size_t> current;
    current.reserve(n);
    for (const auto& s : sgd_) current.push_back(s.batch_size);
    scale_now = scheduler_.observe(current);
  }
  if (scale_now) {
    BatchScalingParams params;
    params.batch_min = cfg_.derived_batch_min();
    params.batch_max = cfg_.batch_max;
    params.beta = cfg_.derived_beta();
    // Algorithm 1 balances update rates across the machines that actually
    // ran this mega-batch; dead replicas would drag the mean to zero.
    std::vector<GpuSgdState> alive_sgd;
    alive_sgd.reserve(alive.size());
    for (std::size_t g : alive) alive_sgd.push_back(sgd_[g]);
    const auto outcome = scale_batch_sizes(alive_sgd, params);
    for (std::size_t i = 0; i < alive.size(); ++i) {
      sgd_[alive[i]] = alive_sgd[i];
    }
    if (outcome.any_change) result.scaling_updates += 1;
    HETERO_DEBUG << method_name() << ": mega-batch " << result.merges
                 << " mean updates " << outcome.mean_updates
                 << (weights.perturbed ? " [perturbed]" : "");
  }

  // Joins take effect after scaling so a fresh replica keeps b_max: it is
  // seeded from the just-merged global model with zero pending updates.
  for (std::size_t g : runtime_.apply_joins_until(timing.finish)) {
    sgd_[g] = GpuSgdState{cfg_.batch_max, cfg_.learning_rate, 0};
  }
  ++megabatch_index_;
}

}  // namespace hetero::core
