#include "core/param_server.h"

#include <algorithm>
#include <limits>

namespace hetero::core {

ParamServerTrainer::ParamServerTrainer(const data::XmlDataset& dataset,
                                       const TrainerConfig& cfg,
                                       std::vector<sim::DeviceSpec> devices,
                                       std::size_t staleness_bound)
    : Trainer(dataset, cfg, std::move(devices)),
      staleness_bound_(staleness_bound) {
  in_flight_.resize(runtime_.num_gpus());
  for (std::size_t g = 0; g < runtime_.num_gpus(); ++g) {
    gradients_.push_back(runtime_.global_model().make_workspace());
  }
  local_clock_.resize(runtime_.num_gpus(), 0);
}

void ParamServerTrainer::dispatch(std::size_t g, double earliest) {
  auto& slot = in_flight_[g];
  slot.batch = runtime_.next_batch(cfg_.batch_max);
  slot.snapshot_version = global_version_;
  slot.active = true;

  // Pull the current model over the shared host link, compute, push the
  // gradient back. All PS traffic contends on the host link. Compressed
  // merge precisions shrink both directions to the quantized wire size
  // (cost-only modeling).
  const std::size_t model_bytes =
      static_cast<std::size_t>(runtime_.virtual_model_wire().total());
  const double pull = runtime_.links().transfer_seconds(
      model_bytes, sim::LinkModel::kHost, static_cast<int>(g),
      runtime_.num_gpus());
  const double push = runtime_.links().transfer_seconds(
      model_bytes, static_cast<int>(g), sim::LinkModel::kHost,
      runtime_.num_gpus());

  comm_accum_ += pull + push;
  const auto stats = runtime_.global_model().compute_gradients(
      slot.batch.x, slot.batch.y, *gradients_[g]);
  runtime_.record_loss(g, stats.loss);

  const double compute_done = runtime_.charge_step(
      g, slot.batch.x, std::max(earliest, runtime_.gpu_free_at(g)) + pull);
  slot.finish = compute_done + push;
  runtime_.gpu(g).wait_all_until(slot.finish);
}

void ParamServerTrainer::run_megabatch(TrainResult& result) {
  const std::size_t n = runtime_.num_gpus();
  const std::size_t mega = cfg_.megabatch_samples();
  const float lr =
      static_cast<float>(cfg_.learning_rate * lr_schedule_factor());
  std::vector<std::size_t> updates_this_megabatch(n, 0);

  const auto min_clock = [&] {
    return *std::min_element(local_clock_.begin(), local_clock_.end());
  };
  const auto may_dispatch = [&](std::size_t g) {
    // SSP window: a GPU may start its next update only if it is within
    // `staleness_bound` updates of the slowest GPU.
    return local_clock_[g] <= min_clock() + staleness_bound_;
  };

  for (std::size_t g = 0; g < n; ++g) {
    if (!in_flight_[g].active && may_dispatch(g)) dispatch(g, 0.0);
  }

  std::size_t applied = 0;
  while (applied < mega) {
    std::size_t g = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (in_flight_[i].active && in_flight_[i].finish < best) {
        best = in_flight_[i].finish;
        g = i;
      }
    }

    auto& slot = in_flight_[g];
    runtime_.global_optimizer().apply(runtime_.global_model(), *gradients_[g],
                                      lr,
                                      static_cast<float>(cfg_.weight_decay));
    staleness_sum_ += global_version_ - slot.snapshot_version;
    ++staleness_count_;
    ++global_version_;

    applied += slot.batch.x.rows();
    local_clock_[g] += 1;
    updates_this_megabatch[g] += 1;
    result.gpus[g].total_samples += slot.batch.x.rows();
    slot.active = false;

    // The finished update may unblock SSP-stalled GPUs (including g).
    bool any_active = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (!in_flight_[i].active) {
        if (may_dispatch(i)) {
          dispatch(i, best);
        } else {
          ++ssp_stalls_;
        }
      }
      any_active |= in_flight_[i].active;
    }
    // Safety valve: the slowest GPU is always dispatchable, so the loop can
    // never wedge — but guard against config edge cases regardless.
    if (!any_active && applied < mega) {
      std::size_t slowest = 0;
      for (std::size_t i = 1; i < n; ++i) {
        if (local_clock_[i] < local_clock_[slowest]) slowest = i;
      }
      dispatch(slowest, best);
    }
  }

  for (std::size_t g = 0; g < n; ++g) {
    result.gpus[g].batch_size.push_back(cfg_.batch_max);
    result.gpus[g].updates.push_back(updates_this_megabatch[g]);
  }
  result.merges += 1;
  result.comm_seconds = comm_accum_;
  result.avg_staleness =
      staleness_count_ == 0
          ? 0.0
          : static_cast<double>(staleness_sum_) /
                static_cast<double>(staleness_count_);
}

}  // namespace hetero::core
