// TrainResult export: CSV series (one row per curve point) and a JSON
// summary document, so experiments can be archived and re-plotted without
// rerunning.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/metrics.h"

namespace hetero::core {

/// Writes curve points as CSV with a header row:
/// dataset,method,gpus,megabatch,vtime,samples,passes,top1,top5,test_loss,
/// train_loss,alive_gpus,fault_events,degraded_merges,oom_clamps,
/// recovery_seconds
/// (alive_gpus is per curve point; the fault counters are run-level and
/// repeated on every row of that run).
void write_curve_csv(std::ostream& out, const TrainResult& result);
void write_curve_csv(std::ostream& out,
                     const std::vector<TrainResult>& results);

/// Writes a JSON object with the summary metrics, per-GPU traces, and the
/// full accuracy curve.
void write_result_json(std::ostream& out, const TrainResult& result);
void write_result_json_file(const std::string& path,
                            const TrainResult& result);

}  // namespace hetero::core
