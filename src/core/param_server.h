// Stale-Synchronous-Parallel parameter server baseline.
//
// The paper grounds Adaptive SGD's staleness bounds in the SSP literature
// (Ho et al. [11], Lian et al. [14]): b_min/b_max "impose bounds on replica
// staleness, allowing the application of convergence results from stale
// synchronous SGD". This trainer implements the referenced model directly,
// as a GeePS-style parameter server:
//
//   - the global model lives on the host; every GPU pulls it over the PCIe
//     link, computes a gradient, and pushes the gradient back;
//   - GPUs proceed asynchronously EXCEPT that no GPU may run more than
//     `staleness_bound` updates ahead of the slowest one (the SSP window);
//     a GPU that gets too far ahead blocks until the straggler catches up.
//
// With staleness_bound = 0 this degrades to synchronous gradient
// aggregation over the host link; with a large bound it approaches the
// fully asynchronous trainer. The sweep between the two extremes is the
// classic SSP trade-off curve.
#pragma once

#include <memory>

#include "core/trainer.h"

namespace hetero::core {

class ParamServerTrainer final : public Trainer {
 public:
  ParamServerTrainer(const data::XmlDataset& dataset,
                     const TrainerConfig& cfg,
                     std::vector<sim::DeviceSpec> devices,
                     std::size_t staleness_bound = 2);

  std::string method_name() const override { return "ssp-ps"; }

  std::size_t staleness_bound() const { return staleness_bound_; }

  /// Times a GPU was ready but blocked by the SSP window.
  std::size_t ssp_stalls() const { return ssp_stalls_; }

 protected:
  void run_megabatch(TrainResult& result) override;

 private:
  struct InFlight {
    bool active = false;
    double finish = 0.0;
    std::size_t snapshot_version = 0;  // global updates applied at dispatch
    MultiGpuRuntime::Batch batch;
  };

  void dispatch(std::size_t g, double earliest);

  std::size_t staleness_bound_;
  std::vector<InFlight> in_flight_;
  std::vector<std::unique_ptr<nn::ModelWorkspace>> gradients_;
  std::vector<std::size_t> local_clock_;   // updates completed per GPU
  std::size_t global_version_ = 0;         // total updates applied
  std::size_t ssp_stalls_ = 0;             // times a fast GPU had to wait
  double comm_accum_ = 0.0;                // pull+push transfer time
  std::size_t staleness_sum_ = 0;
  std::size_t staleness_count_ = 0;
};

}  // namespace hetero::core
