#include "core/result_io.h"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace hetero::core {

namespace {
void write_rows(std::ostream& out, const TrainResult& r) {
  for (const auto& p : r.curve) {
    out << r.dataset << ',' << r.method << ',' << r.num_gpus << ','
        << p.megabatch << ',' << p.vtime << ',' << p.samples << ','
        << p.passes << ',' << p.top1 << ',' << p.top5 << ',' << p.test_loss
        << ',' << p.train_loss << ',' << p.alive_gpus << ','
        << r.faults.events_injected << ',' << r.faults.degraded_merges << ','
        << r.faults.oom_clamps << ',' << r.faults.recovery_seconds << '\n';
  }
}

constexpr const char* kCsvHeader =
    "dataset,method,gpus,megabatch,vtime,samples,passes,top1,top5,"
    "test_loss,train_loss,alive_gpus,fault_events,degraded_merges,"
    "oom_clamps,recovery_seconds\n";
}  // namespace

void write_curve_csv(std::ostream& out, const TrainResult& result) {
  out << kCsvHeader;
  write_rows(out, result);
}

void write_curve_csv(std::ostream& out,
                     const std::vector<TrainResult>& results) {
  out << kCsvHeader;
  for (const auto& r : results) write_rows(out, r);
}

void write_result_json(std::ostream& out, const TrainResult& r) {
  out << "{\"dataset\":\"" << r.dataset << "\",\"method\":\"" << r.method
      << "\",\"gpus\":" << r.num_gpus << ",\"total_vtime\":" << r.total_vtime
      << ",\"comm_seconds\":" << r.comm_seconds << ",\"merges\":" << r.merges
      << ",\"perturbed_merges\":" << r.perturbed_merges
      << ",\"scaling_updates\":" << r.scaling_updates
      << ",\"avg_staleness\":" << r.avg_staleness
      << ",\"best_top1\":" << r.best_top1()
      << ",\"final_top1\":" << r.final_top1() << ",\"faults\":{"
      << "\"events_injected\":" << r.faults.events_injected
      << ",\"slowdowns\":" << r.faults.slowdowns
      << ",\"stalls\":" << r.faults.stalls
      << ",\"oom_events\":" << r.faults.oom_events
      << ",\"crashes\":" << r.faults.crashes
      << ",\"joins\":" << r.faults.joins
      << ",\"oom_clamps\":" << r.faults.oom_clamps
      << ",\"degraded_merges\":" << r.faults.degraded_merges
      << ",\"recovery_seconds\":" << r.faults.recovery_seconds
      << "},\"curve\":[";
  for (std::size_t i = 0; i < r.curve.size(); ++i) {
    const auto& p = r.curve[i];
    if (i) out << ',';
    out << "{\"vtime\":" << p.vtime << ",\"samples\":" << p.samples
        << ",\"passes\":" << p.passes << ",\"top1\":" << p.top1
        << ",\"top5\":" << p.top5 << ",\"test_loss\":" << p.test_loss
        << ",\"alive_gpus\":" << p.alive_gpus << "}";
  }
  out << "],\"gpus_detail\":[";
  for (std::size_t g = 0; g < r.gpus.size(); ++g) {
    const auto& t = r.gpus[g];
    if (g) out << ',';
    out << "{\"busy_seconds\":" << t.busy_seconds
        << ",\"total_updates\":" << t.total_updates
        << ",\"total_samples\":" << t.total_samples << ",\"batch_size\":[";
    for (std::size_t m = 0; m < t.batch_size.size(); ++m) {
      if (m) out << ',';
      out << t.batch_size[m];
    }
    out << "],\"updates\":[";
    for (std::size_t m = 0; m < t.updates.size(); ++m) {
      if (m) out << ',';
      out << t.updates[m];
    }
    out << "]}";
  }
  out << "]}";
}

void write_result_json_file(const std::string& path,
                            const TrainResult& result) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("result_io: cannot open " + path);
  write_result_json(out, result);
}

}  // namespace hetero::core
