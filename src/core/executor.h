// Math-execution backends for the MultiGpuRuntime.
//
// Scheduling decisions and virtual-time bookkeeping are always made by the
// (single-threaded) dynamic scheduler; what the executor controls is where
// the *real* replica math runs:
//
//   InlineExecutor   — runs work immediately on the calling thread
//                      (deterministic discrete-event mode).
//   ThreadedExecutor — one GPU-manager thread per device, fed through
//                      per-device event queues (the Fig. 3 architecture).
//                      Work for one device executes in FIFO order on its
//                      manager, so replica state is never shared between
//                      threads; barrier() joins all queues.
//
// Because scheduling depends only on virtual clocks (not on which real
// thread finished first), both executors produce identical results.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "util/event_queue.h"

namespace hetero::core {

class Executor {
 public:
  virtual ~Executor() = default;

  /// Enqueues `work` for device `gpu`. Work items for the same device run
  /// in submission order.
  virtual void dispatch(std::size_t gpu, std::function<void()> work) = 0;

  /// Blocks until every dispatched work item has completed.
  virtual void barrier() = 0;
};

class InlineExecutor final : public Executor {
 public:
  void dispatch(std::size_t, std::function<void()> work) override { work(); }
  void barrier() override {}
};

class ThreadedExecutor final : public Executor {
 public:
  explicit ThreadedExecutor(std::size_t num_gpus);
  ~ThreadedExecutor() override;

  void dispatch(std::size_t gpu, std::function<void()> work) override;
  void barrier() override;

 private:
  struct Manager;
  std::vector<std::unique_ptr<Manager>> managers_;
};

/// Factory from the config's ExecutionMode.
std::unique_ptr<Executor> make_executor(bool threaded, std::size_t num_gpus);

}  // namespace hetero::core
