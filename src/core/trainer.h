// Trainer interface + factory.
//
// All four multi-GPU algorithms share the mega-batch experiment loop
// (process a mega-batch worth of samples, then measure test accuracy — the
// paper's methodology) and differ only in how batches are scheduled,
// replicas updated, and models merged.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "core/runtime.h"

namespace hetero::core {

class Trainer {
 public:
  Trainer(const data::XmlDataset& dataset, const TrainerConfig& cfg,
          std::vector<sim::DeviceSpec> devices);
  virtual ~Trainer() = default;

  /// Runs cfg.num_megabatches mega-batches (or until the virtual-time
  /// budget is exhausted), evaluating after each one.
  TrainResult train();

  virtual std::string method_name() const = 0;

  MultiGpuRuntime& runtime() { return runtime_; }
  const TrainerConfig& config() const { return cfg_; }

  /// Invoked after every completed mega-batch (post-merge, post-eval,
  /// post-early-stop bookkeeping) with the 1-based mega-batch index and the
  /// current virtual time. The fault subsystem installs its periodic
  /// checkpoint writer here; default is none.
  using BoundaryHook = std::function<void(std::size_t megabatch, double vtime)>;
  void set_boundary_hook(BoundaryHook hook) {
    boundary_hook_ = std::move(hook);
  }

  /// Positions the trainer to resume after `completed` mega-batches
  /// (checkpointed recovery): train() records its initial curve point at
  /// the restored clock/index and starts with mega-batch completed+1, with
  /// the early-stopping state re-seeded from the checkpoint.
  void set_resume_point(std::size_t completed, double best_top1,
                        std::size_t megabatches_without_improvement);

  /// Early-stopping state (captured into checkpoints at boundaries).
  double early_stop_best() const { return early_stop_best_; }
  std::size_t early_stop_stagnation() const { return early_stop_stagnation_; }

 protected:
  /// Processes one mega-batch: schedule batches, update replicas, merge.
  /// Must leave the merged model in runtime_.global_model() and update the
  /// per-GPU traces in `result`.
  virtual void run_megabatch(TrainResult& result) = 0;

  /// Called once before the first mega-batch.
  virtual void on_start(TrainResult&) {}

  /// Current virtual time (all devices' latest clock).
  double current_vtime() const;

  /// Learning-rate schedule multiplier for the mega-batch being processed
  /// (step decay; warmup is handled by the adaptive trainer itself).
  double lr_schedule_factor() const;

  /// 0-based index of the mega-batch currently being processed (maintained
  /// by train()).
  std::size_t current_megabatch() const { return current_megabatch_; }

  MultiGpuRuntime runtime_;
  TrainerConfig cfg_;

 private:
  std::size_t current_megabatch_ = 0;
  std::size_t start_megabatch_ = 0;  // completed mega-batches at resume
  double early_stop_best_ = 0.0;
  std::size_t early_stop_stagnation_ = 0;
  BoundaryHook boundary_hook_;
};

enum class Method { kAdaptive, kElastic, kSync, kCrossbow, kAsync };

std::string to_string(Method method);

/// Builds a trainer. For Method::kSync the config's framework_overhead
/// should model the heavier framework stack (the paper's TensorFlow
/// baseline); the factory applies 1.4 if the caller left it at 1.0.
std::unique_ptr<Trainer> make_trainer(Method method,
                                      const data::XmlDataset& dataset,
                                      TrainerConfig cfg,
                                      std::vector<sim::DeviceSpec> devices);

}  // namespace hetero::core
