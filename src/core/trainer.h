// Trainer interface + factory.
//
// All four multi-GPU algorithms share the mega-batch experiment loop
// (process a mega-batch worth of samples, then measure test accuracy — the
// paper's methodology) and differ only in how batches are scheduled,
// replicas updated, and models merged.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "core/runtime.h"

namespace hetero::core {

class Trainer {
 public:
  Trainer(const data::XmlDataset& dataset, const TrainerConfig& cfg,
          std::vector<sim::DeviceSpec> devices);
  virtual ~Trainer() = default;

  /// Runs cfg.num_megabatches mega-batches (or until the virtual-time
  /// budget is exhausted), evaluating after each one.
  TrainResult train();

  virtual std::string method_name() const = 0;

  MultiGpuRuntime& runtime() { return runtime_; }

 protected:
  /// Processes one mega-batch: schedule batches, update replicas, merge.
  /// Must leave the merged model in runtime_.global_model() and update the
  /// per-GPU traces in `result`.
  virtual void run_megabatch(TrainResult& result) = 0;

  /// Called once before the first mega-batch.
  virtual void on_start(TrainResult&) {}

  /// Current virtual time (all devices' latest clock).
  double current_vtime() const;

  /// Learning-rate schedule multiplier for the mega-batch being processed
  /// (step decay; warmup is handled by the adaptive trainer itself).
  double lr_schedule_factor() const;

  /// 0-based index of the mega-batch currently being processed (maintained
  /// by train()).
  std::size_t current_megabatch() const { return current_megabatch_; }

  MultiGpuRuntime runtime_;
  TrainerConfig cfg_;

 private:
  std::size_t current_megabatch_ = 0;
};

enum class Method { kAdaptive, kElastic, kSync, kCrossbow, kAsync };

std::string to_string(Method method);

/// Builds a trainer. For Method::kSync the config's framework_overhead
/// should model the heavier framework stack (the paper's TensorFlow
/// baseline); the factory applies 1.4 if the caller left it at 1.0.
std::unique_ptr<Trainer> make_trainer(Method method,
                                      const data::XmlDataset& dataset,
                                      TrainerConfig cfg,
                                      std::vector<sim::DeviceSpec> devices);

}  // namespace hetero::core
