// Synchronous gradient-aggregation baseline (the paper's TensorFlow
// mirrored-strategy configuration).
//
// Every round, each GPU computes a partial gradient from an equally-sized
// batch against the identical global model; gradients are all-reduced and
// the aggregated gradient updates every replica before the next round
// begins. The global model therefore updates after EVERY batch — one of the
// two reasons the paper gives for TensorFlow's slower time-to-accuracy; the
// other (slower epoch execution in the heavier framework) is modelled by
// cfg.framework_overhead.
#pragma once

#include "core/trainer.h"

namespace hetero::core {

class SyncSgdTrainer final : public Trainer {
 public:
  using Trainer::Trainer;

  std::string method_name() const override { return "sync-sgd-tf"; }

 protected:
  void run_megabatch(TrainResult& result) override;
};

}  // namespace hetero::core
