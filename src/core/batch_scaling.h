// Algorithm 1: Batch Size Scaling.
//
// Executed at every mega-batch boundary. Moves each GPU's batch size toward
// the state where all GPUs perform the same number of model-replica updates:
// GPUs that updated more often than the average get a LARGER batch (they are
// faster; more samples per update slows their update rate), GPUs below the
// average get a SMALLER one. The move is linear in the deviation from the
// mean with slope beta, clamped to [b_min, b_max]; the learning rate follows
// the linear scaling rule (lr scales with the batch size).
#pragma once

#include <cstddef>
#include <vector>

namespace hetero::core {

struct GpuSgdState {
  std::size_t batch_size = 0;
  double learning_rate = 0.0;
  std::size_t updates = 0;  // model replica updates in the last mega-batch
};

struct BatchScalingParams {
  std::size_t batch_min = 0;
  std::size_t batch_max = 0;
  double beta = 0.0;
};

struct BatchScalingOutcome {
  bool any_change = false;
  double mean_updates = 0.0;
};

/// Applies Algorithm 1 in place to `gpus`. Returns whether any batch size
/// changed (used to count scaling activations, Fig. 6a).
BatchScalingOutcome scale_batch_sizes(std::vector<GpuSgdState>& gpus,
                                      const BatchScalingParams& params);

/// Adaptive scaling cadence (Section III-A: "By default, the algorithm is
/// executed after every mega-batch. However, if stability is achieved or
/// the system enters an oscillatory state, the frequency at which scaling
/// is performed can be increased" — i.e. the interval between scaling
/// passes is widened once per-GPU batch sizes either stop moving or only
/// bounce back and forth).
///
/// Detection: after each mega-batch, feed the current batch sizes.
///   - stable:     no batch size changed for `stability_window` steps.
///   - oscillating: every change over the window is a reversal of the
///                  previous change's direction on the same GPU.
/// Either condition doubles the interval (capped at `max_interval`); a
/// genuine drift (non-reversal change) resets the interval to 1.

/// Serializable snapshot of the cadence state (checkpointed recovery):
/// restoring it resumes the exact observe() decision sequence.
struct ScalingSchedulerState {
  std::size_t interval = 1;
  std::size_t since_last_scale = 0;
  bool stable = false;
  bool oscillating = false;
  std::vector<std::size_t> previous;
  std::vector<int> last_direction;
  std::size_t steps_without_change = 0;
  std::size_t reversal_streak = 0;
};

class ScalingScheduler {
 public:
  explicit ScalingScheduler(std::size_t stability_window = 3,
                            std::size_t max_interval = 8);

  /// Records the batch sizes in effect for the finished mega-batch and
  /// returns true when Algorithm 1 should run at this boundary.
  bool observe(const std::vector<std::size_t>& batch_sizes);

  std::size_t interval() const { return interval_; }
  bool stable() const { return stable_; }
  bool oscillating() const { return oscillating_; }

  ScalingSchedulerState snapshot() const;
  void restore(const ScalingSchedulerState& state);

 private:
  std::size_t stability_window_;
  std::size_t max_interval_;
  std::size_t interval_ = 1;
  std::size_t since_last_scale_ = 0;
  bool stable_ = false;
  bool oscillating_ = false;
  std::vector<std::size_t> previous_;
  std::vector<int> last_direction_;  // -1 / 0 / +1 per GPU
  std::size_t steps_without_change_ = 0;
  std::size_t reversal_streak_ = 0;
};

}  // namespace hetero::core
