// Algorithm 2: Normalized Model Merging.
//
// Computes per-replica merge weights at a mega-batch boundary:
//   - if every GPU performed the same number of updates, weights are
//     normalized by batch size (larger batches -> more accurate gradients),
//   - otherwise by the number of updates (prioritize fresher replicas).
// If all replicas are well-regularized (L2 norm per parameter below
// pert_thr), the most-updated replica's weight is perturbed up by (1+delta)
// and the least-updated down by (1-delta) — deliberately denormalizing the
// weights to push the merged model toward the freshest replica.
//
// The merged model then follows the momentum update rule:
//   w' = sum_i alpha_i w_i + gamma (w - w_prev);  w_prev <- w;  w <- w'.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hetero::core {

/// How the replica weights are normalized (Algorithm 2 lines 1-3 and the
/// Section III-B discussion).
enum class MergeNormalization {
  /// The paper's default: by batch size when update counts are equal,
  /// otherwise by update count.
  kAuto,
  /// Always by update count.
  kUpdates,
  /// Always by batch size.
  kBatchSize,
  /// "An alternative for later stages is to normalize based on the product
  /// between the number of updates and the batch size" — i.e. by the number
  /// of samples each replica consumed.
  kUpdatesTimesBatch,
};

struct MergeInputs {
  std::vector<std::size_t> updates;      // u_i per GPU
  std::vector<std::size_t> batch_sizes;  // b_i per GPU
  std::vector<double> l2_per_param;      // ||w_i||_2 / |w| per GPU
  double pert_threshold = 0.1;
  double pert_delta = 0.1;
  bool enable_perturbation = true;
  MergeNormalization normalization = MergeNormalization::kAuto;
};

struct MergeWeights {
  std::vector<double> alpha;
  bool perturbed = false;
  bool by_updates = false;  // true when normalized by update counts
};

/// Lines 1-7 of Algorithm 2: normalization + perturbation.
MergeWeights compute_merge_weights(const MergeInputs& inputs);

/// Lines 8-9: momentum update of the global model, given the already
/// weighted-averaged replica combination `merged` (from the all-reduce).
///   w' = merged + gamma * (w - w_prev)
/// `global` and `previous_global` are updated in place.
void momentum_global_update(std::span<const float> merged,
                            std::span<float> global,
                            std::span<float> previous_global, double gamma);

}  // namespace hetero::core
