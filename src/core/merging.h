// Algorithm 2: Normalized Model Merging.
//
// Computes per-replica merge weights at a mega-batch boundary:
//   - if every GPU performed the same number of updates, weights are
//     normalized by batch size (larger batches -> more accurate gradients),
//   - otherwise by the number of updates (prioritize fresher replicas).
// If all replicas are well-regularized (L2 norm per parameter below
// pert_thr), the most-updated replica's weight is perturbed up by (1+delta)
// and the least-updated down by (1-delta) — deliberately denormalizing the
// weights to push the merged model toward the freshest replica.
//
// The merged model then follows the momentum update rule:
//   w' = sum_i alpha_i w_i + gamma (w - w_prev);  w_prev <- w;  w <- w'.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "comm/quant.h"
#include "sparse/sparse_gradient.h"
#include "util/kernel_context.h"

namespace hetero::core {

/// How the replica weights are normalized (Algorithm 2 lines 1-3 and the
/// Section III-B discussion).
enum class MergeNormalization {
  /// The paper's default: by batch size when update counts are equal,
  /// otherwise by update count.
  kAuto,
  /// Always by update count.
  kUpdates,
  /// Always by batch size.
  kBatchSize,
  /// "An alternative for later stages is to normalize based on the product
  /// between the number of updates and the batch size" — i.e. by the number
  /// of samples each replica consumed.
  kUpdatesTimesBatch,
};

/// What happens to per-replica optimizer state (Adam/AdamW moments, Adagrad
/// accumulators, lazy row counters) at a merge boundary (DESIGN.md §11).
/// Replica WEIGHTS are always merged by Algorithm 2; this policy only
/// governs the optimizer state living beside them.
enum class MomentMerge {
  /// Algorithm-2-weighted average of the state across alive replicas,
  /// written back to every alive replica: touched-row union for segment 0
  /// under sparse_merge (untouched rows keep local state), full segments
  /// otherwise. Lazy row counters take the max across alive replicas.
  /// Ships num_slots extra model-sized fp32 payloads per merge.
  kAverage,
  /// Each replica keeps its local state across the merge. Free.
  kKeep,
  /// Zero all state at every merge boundary (fresh-start ablation). Free.
  kReset,
};

/// Flag / display name: "average", "keep", "reset".
std::string to_string(MomentMerge policy);

/// Parses a flag value; nullopt on anything but the three names.
std::optional<MomentMerge> parse_moment_merge(const std::string& text);

struct MergeInputs {
  std::vector<std::size_t> updates;      // u_i per GPU
  std::vector<std::size_t> batch_sizes;  // b_i per GPU
  std::vector<double> l2_per_param;      // ||w_i||_2 / |w| per GPU
  double pert_threshold = 0.1;
  double pert_delta = 0.1;
  bool enable_perturbation = true;
  MergeNormalization normalization = MergeNormalization::kAuto;
};

struct MergeWeights {
  std::vector<double> alpha;
  bool perturbed = false;
  bool by_updates = false;  // true when normalized by update counts
};

/// Lines 1-7 of Algorithm 2: normalization + perturbation.
MergeWeights compute_merge_weights(const MergeInputs& inputs);

/// Elastic membership (fault subsystem): expands weights computed by
/// compute_merge_weights over the alive subset into a full per-replica
/// vector — survivors keep their Algorithm-2 weight (already normalized
/// over the survivor inputs), dead replicas get exactly 0 and are excluded
/// from the merge accumulation. `alive_indices` lists the replica index of
/// each survivor weight, ascending.
std::vector<double> expand_alive_weights(
    std::span<const double> alive_weights,
    std::span<const std::size_t> alive_indices, std::size_t num_replicas);

/// Lines 8-9: momentum update of the global model, given the already
/// weighted-averaged replica combination `merged` (from the all-reduce).
///   w' = merged + gamma * (w - w_prev)
/// `global` and `previous_global` are updated in place.
void momentum_global_update(std::span<const float> merged,
                            std::span<float> global,
                            std::span<float> previous_global, double gamma);

// ---- Fused merge + momentum kernels (the runtime merge path) -------------
//
// These kernels fuse the all-reduce reduction with Algorithm 2 lines 8-9:
// the weighted average sum_i w_i x_i is accumulated in double precision
// (replica 0 initializes the accumulator, remaining replicas added in index
// order) and the momentum update is applied to the global/previous-global
// models in the same pass. The merged value only ever lives in a stack
// block — no model-sized accumulator, no staging flats, and no replica
// writes (replicas are refreshed by the broadcast that follows the merge).
//
// Determinism contract: every kernel evaluates the bit-exact same
// per-element expression in the same order —
//   merged = float(w_0 x_0[j] + w_1 x_1[j] + ... + w_{n-1} x_{n-1}[j])
//   momentum:  w = global[j]; global[j] = merged + gamma (w - prev[j]);
//              prev[j] = w
//   otherwise: prev[j] = global[j]; global[j] = merged
// Sharding/threading partitions the element space without reordering any
// per-element sum, so results are bit-identical at every shard and thread
// count; and because untouched rows hold x_i[j] bit-equal to global[j],
// the touched + untouched delta pair is bit-identical to the dense kernel.

struct MergeUpdate {
  std::span<const double> weights;  // alpha_i — NOT renormalized (Σ may ≠ 1)
  double gamma = 0.0;               // momentum factor
  bool momentum = true;             // false: plain assignment update
};

/// Fused dense merge of one parameter segment. Each replica pointer refers
/// to `len` floats; `global` and `prev` are the matching global-model and
/// previous-global segments. The segment is split into at least
/// `min_shards` shards (mirroring the paper's multi-stream partitions; the
/// runtime passes the all-reduce stream count) and sharded across `ctx`.
void merge_segment(std::span<const float* const> replicas, std::size_t len,
                   const MergeUpdate& u, std::span<float> global,
                   std::span<float> prev, std::size_t min_shards,
                   const kernels::Context& ctx);

/// Fused merge restricted to `rows` of a row-major (num_rows x cols)
/// segment: the delta path's reduced+rebroadcast set. `rows` must be
/// deduplicated (sorted recommended for locality); replicas/global/prev
/// point at the full segment base.
void merge_touched_rows(std::span<const float* const> replicas,
                        std::span<const std::uint32_t> rows, std::size_t cols,
                        const MergeUpdate& u, float* global, float* prev,
                        const kernels::Context& ctx);

// ---- Quantized merge (compressed payloads, DESIGN.md §10) ----------------
//
// When cfg.merge_precision != fp32 the runtime ships per-replica *deltas*
// d_i = replica_i - global (with the error-feedback residual folded in)
// quantized to fp16 or int8, and the fused merge reconstructs
//   merged = (sum_i w_i) * global[j] + sum_i w_i * dequant(q_i[j])
// in double precision — global initializes the accumulator once with the
// summed weight, then each replica's dequantized code is added in index
// order. dequant(q) is always the single-rounded float code*scale, so the
// per-element expression (and therefore the merged model) is bit-identical
// on every ISA and at every shard/thread count, exactly like the fp32
// kernels above. fp16/int8 results intentionally differ from fp32 — the
// fp32 path never goes through these functions and stays the bit-exact
// oracle.

/// Scale-group width of the quantized dense path: int8 payloads carry one
/// fp32 scale per kQuantGroupCols-element block (W1 rows group by row in
/// sparse mode instead). Equal to the merge accumulator block so each merge
/// block sees exactly one scale.
inline constexpr std::size_t kQuantGroupCols = 512;

/// Per-replica quantized delta codes for one contiguous code region.
/// Exactly one of fp16/i8 is non-empty, matching `precision` (never
/// kFp32). For int8, scales[i] points at replica i's per-group fp32
/// scales for the same region; for fp16, dequant_scale is the shared
/// 1/loss_scale multiplier.
struct QuantizedSources {
  comm::MergePrecision precision = comm::MergePrecision::kFp16;
  std::span<const std::uint16_t* const> fp16;
  std::span<const std::int8_t* const> i8;
  std::span<const float* const> scales;
  float dequant_scale = 1.0f;

  std::size_t num_replicas() const {
    return precision == comm::MergePrecision::kInt8 ? i8.size() : fp16.size();
  }
};

/// Quantized counterpart of merge_segment: fuses
///   merged = wsum * global[j] + sum_i w_i * dequant(codes_i[j])
/// with the momentum/plain finalize. Codes and scales are segment-local
/// (code j maps to segment element j; scale group g covers elements
/// [g*kQuantGroupCols, ...)). Sharding splits on group boundaries, so any
/// shard/thread count is bit-identical.
void merge_segment_quantized(const QuantizedSources& src, std::size_t len,
                             double wsum, const MergeUpdate& u,
                             std::span<float> global, std::span<float> prev,
                             std::size_t min_shards,
                             const kernels::Context& ctx);

/// Quantized counterpart of merge_touched_rows. Codes are packed in union
/// order (union row u's codes start at u*cols); global/prev point at the
/// full segment base and row u updates rows[u]. For int8, scales[i][u] is
/// replica i's scale for union row u (one group per W1 row).
void merge_touched_rows_quantized(const QuantizedSources& src,
                                  std::span<const std::uint32_t> rows,
                                  std::size_t cols, double wsum,
                                  const MergeUpdate& u, float* global,
                                  float* prev, const kernels::Context& ctx);

/// Closed-form complement of merge_touched_rows: rows NOT in `touched` are
/// bit-identical across replicas (untouched since the last broadcast), so
/// the reduction needs no replica reads — it re-accumulates
/// sum_i w_i global[j] in the same fixed order, which is bit-identical to
/// the dense kernel reading the n equal replica copies.
void merge_untouched_rows(const sparse::RowSet& touched, std::size_t num_rows,
                          std::size_t cols, const MergeUpdate& u,
                          std::span<float> global, std::span<float> prev,
                          const kernels::Context& ctx);

}  // namespace hetero::core
