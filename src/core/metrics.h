// Training metrics: everything needed to regenerate the paper's figures.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace hetero::core {

/// One accuracy measurement, taken after a mega-batch (paper methodology).
struct CurvePoint {
  double vtime = 0.0;       // virtual seconds since training start
  std::size_t samples = 0;  // training samples processed so far
  double passes = 0.0;      // samples / dataset size ("epochs" in Fig. 5b)
  std::size_t megabatch = 0;
  double top1 = 0.0;
  double top5 = 0.0;
  double test_loss = 0.0;
  double train_loss = 0.0;  // mean step loss within the last mega-batch
  // Appended field (keeps older aggregate initializers valid): merge-group
  // size when the point was recorded — shrinks after a crash, grows back
  // after a join (fault subsystem).
  std::size_t alive_gpus = 0;
};

/// Fault-injection and elastic-membership counters. Event windows are
/// counted when the FaultInjector arms them; crashes/joins when the
/// membership flip is applied at a merge boundary.
struct FaultStats {
  std::size_t events_injected = 0;  // FaultPlan events armed on the runtime
  std::size_t slowdowns = 0;        // transient-slowdown windows armed
  std::size_t stalls = 0;           // stall windows armed
  std::size_t oom_events = 0;       // memory-cap windows armed
  std::size_t crashes = 0;          // replicas removed from the merge group
  std::size_t joins = 0;            // replicas re-admitted to the group
  std::size_t oom_clamps = 0;       // batches re-clamped after simulated OOM
  std::size_t degraded_merges = 0;  // merges run with a shrunken group
  std::size_t node_events = 0;      // node-level plan events armed (expanded)
  double recovery_seconds = 0.0;    // summed crash -> rejoin outage time

  bool any() const {
    return events_injected > 0 || oom_clamps > 0 || crashes > 0 || joins > 0;
  }
};

/// Per-GPU execution trace.
struct GpuTrace {
  std::vector<std::size_t> batch_size;   // per mega-batch (Fig. 6a)
  std::vector<std::size_t> updates;      // model updates per mega-batch
  std::size_t total_updates = 0;
  std::size_t total_samples = 0;
  double busy_seconds = 0.0;             // virtual compute time
};

struct TrainResult {
  std::string method;
  std::string dataset;
  std::size_t num_gpus = 0;   // total replicas (GPUs + CPU replicas)
  std::size_t num_nodes = 1;  // server nodes the replicas span
  std::size_t cpu_replicas = 0;

  std::vector<CurvePoint> curve;
  std::vector<GpuTrace> gpus;

  std::size_t merges = 0;            // mega-batch boundaries processed
  std::size_t perturbed_merges = 0;  // merges where Algorithm 2 perturbed
  std::size_t scaling_updates = 0;   // mega-batches where Algorithm 1 moved
                                     // at least one batch size
  double total_vtime = 0.0;
  double comm_seconds = 0.0;         // virtual time in all-reduce/transfers

  /// Mean gradient staleness (updates applied by other GPUs between a
  /// gradient's snapshot and its application). Nonzero only for the
  /// asynchronous trainer.
  double avg_staleness = 0.0;

  /// Fault-injection counters for the run (all zero on a healthy run).
  FaultStats faults;

  /// First virtual time at which top-1 accuracy reached `target`
  /// (linear interpolation between curve points); nullopt if never.
  std::optional<double> time_to_accuracy(double target) const;

  /// First number of passes at which top-1 reached `target`.
  std::optional<double> passes_to_accuracy(double target) const;

  double best_top1() const;
  double final_top1() const;

  /// Fraction of merges that applied perturbation (Fig. 6b).
  double perturbation_frequency() const {
    return merges == 0 ? 0.0
                       : static_cast<double>(perturbed_merges) /
                             static_cast<double>(merges);
  }

  /// Mean per-GPU utilization: busy compute time over total wall-clock.
  /// The straggler problem IS low utilization — Elastic SGD's fast GPUs
  /// idle at barriers; Adaptive SGD's stay busy (Figure 2).
  double mean_utilization() const;

  /// Lowest single-GPU utilization (the most-idle device).
  double min_utilization() const;
};

}  // namespace hetero::core
