// Elastic SGD baseline: K-step elastic model averaging (Section II).
//
// Every GPU statically receives the same number of equally-sized batches per
// mega-batch and performs the same number of local updates; replicas are
// averaged (equal weights) at the mega-batch boundary with the same momentum
// global-update rule as Adaptive SGD (the paper implements both in
// HeteroGPU with a shared update rule — on one GPU they are identical).
// Because assignment ignores relative GPU speed, the mega-batch completes
// only when the slowest GPU finishes: the straggler problem Adaptive SGD
// removes.
#pragma once

#include "core/trainer.h"

namespace hetero::core {

class ElasticSgdTrainer final : public Trainer {
 public:
  using Trainer::Trainer;

  std::string method_name() const override { return "elastic-sgd"; }

 protected:
  void run_megabatch(TrainResult& result) override;
};

}  // namespace hetero::core
