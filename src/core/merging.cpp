#include "core/merging.h"

#include <algorithm>
#include <cassert>

namespace hetero::core {

MergeWeights compute_merge_weights(const MergeInputs& inputs) {
  const std::size_t n = inputs.updates.size();
  assert(inputs.batch_sizes.size() == n);
  assert(inputs.l2_per_param.size() == n);
  MergeWeights out;
  out.alpha.resize(n, 0.0);
  if (n == 0) return out;

  const bool equal_updates =
      std::all_of(inputs.updates.begin(), inputs.updates.end(),
                  [&](std::size_t u) { return u == inputs.updates[0]; });

  // Pick the raw (unnormalized) score per replica.
  const auto score = [&](std::size_t i) -> double {
    switch (inputs.normalization) {
      case MergeNormalization::kAuto:
        // Algorithm 2 lines 2-3: batch size on equal updates, else updates.
        return equal_updates
                   ? static_cast<double>(inputs.batch_sizes[i])
                   : static_cast<double>(inputs.updates[i]);
      case MergeNormalization::kUpdates:
        return static_cast<double>(inputs.updates[i]);
      case MergeNormalization::kBatchSize:
        return static_cast<double>(inputs.batch_sizes[i]);
      case MergeNormalization::kUpdatesTimesBatch:
        return static_cast<double>(inputs.updates[i]) *
               static_cast<double>(inputs.batch_sizes[i]);
    }
    return 0.0;
  };
  out.by_updates = inputs.normalization == MergeNormalization::kUpdates ||
                   (inputs.normalization == MergeNormalization::kAuto &&
                    !equal_updates);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += score(i);
  for (std::size_t i = 0; i < n; ++i) out.alpha[i] = score(i) / total;

  // Perturbation (lines 4-7): only when every replica is well-regularized,
  // so denormalized weights cannot amplify skewed parameters.
  if (inputs.enable_perturbation && n > 1) {
    const bool all_regularized =
        std::all_of(inputs.l2_per_param.begin(), inputs.l2_per_param.end(),
                    [&](double v) { return v < inputs.pert_threshold; });
    if (all_regularized) {
      std::size_t r = 0, s = 0;
      for (std::size_t i = 1; i < n; ++i) {
        if (inputs.updates[i] > inputs.updates[r]) r = i;
        if (inputs.updates[i] < inputs.updates[s]) s = i;
      }
      out.alpha[r] *= 1.0 + inputs.pert_delta;
      out.alpha[s] *= 1.0 - inputs.pert_delta;
      out.perturbed = true;
    }
  }
  return out;
}

void momentum_global_update(std::span<const float> merged,
                            std::span<float> global,
                            std::span<float> previous_global, double gamma) {
  assert(merged.size() == global.size());
  assert(global.size() == previous_global.size());
  const auto g = static_cast<float>(gamma);
  for (std::size_t i = 0; i < merged.size(); ++i) {
    const float w = global[i];
    global[i] = merged[i] + g * (w - previous_global[i]);
    previous_global[i] = w;
  }
}

}  // namespace hetero::core
