#include "core/merging.h"

#include <algorithm>
#include <cassert>

#include "tensor/vec/vec.h"

namespace hetero::core {

std::string to_string(MomentMerge policy) {
  switch (policy) {
    case MomentMerge::kAverage:
      return "average";
    case MomentMerge::kKeep:
      return "keep";
    case MomentMerge::kReset:
      return "reset";
  }
  return "average";
}

std::optional<MomentMerge> parse_moment_merge(const std::string& text) {
  if (text == "average") return MomentMerge::kAverage;
  if (text == "keep") return MomentMerge::kKeep;
  if (text == "reset") return MomentMerge::kReset;
  return std::nullopt;
}

MergeWeights compute_merge_weights(const MergeInputs& inputs) {
  const std::size_t n = inputs.updates.size();
  assert(inputs.batch_sizes.size() == n);
  assert(inputs.l2_per_param.size() == n);
  MergeWeights out;
  out.alpha.resize(n, 0.0);
  if (n == 0) return out;

  const bool equal_updates =
      std::all_of(inputs.updates.begin(), inputs.updates.end(),
                  [&](std::size_t u) { return u == inputs.updates[0]; });

  // Pick the raw (unnormalized) score per replica.
  const auto score = [&](std::size_t i) -> double {
    switch (inputs.normalization) {
      case MergeNormalization::kAuto:
        // Algorithm 2 lines 2-3: batch size on equal updates, else updates.
        return equal_updates
                   ? static_cast<double>(inputs.batch_sizes[i])
                   : static_cast<double>(inputs.updates[i]);
      case MergeNormalization::kUpdates:
        return static_cast<double>(inputs.updates[i]);
      case MergeNormalization::kBatchSize:
        return static_cast<double>(inputs.batch_sizes[i]);
      case MergeNormalization::kUpdatesTimesBatch:
        return static_cast<double>(inputs.updates[i]) *
               static_cast<double>(inputs.batch_sizes[i]);
    }
    return 0.0;
  };
  out.by_updates = inputs.normalization == MergeNormalization::kUpdates ||
                   (inputs.normalization == MergeNormalization::kAuto &&
                    !equal_updates);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += score(i);
  for (std::size_t i = 0; i < n; ++i) out.alpha[i] = score(i) / total;

  // Perturbation (lines 4-7): only when every replica is well-regularized,
  // so denormalized weights cannot amplify skewed parameters.
  if (inputs.enable_perturbation && n > 1) {
    const bool all_regularized =
        std::all_of(inputs.l2_per_param.begin(), inputs.l2_per_param.end(),
                    [&](double v) { return v < inputs.pert_threshold; });
    if (all_regularized) {
      std::size_t r = 0, s = 0;
      for (std::size_t i = 1; i < n; ++i) {
        if (inputs.updates[i] > inputs.updates[r]) r = i;
        if (inputs.updates[i] < inputs.updates[s]) s = i;
      }
      out.alpha[r] *= 1.0 + inputs.pert_delta;
      out.alpha[s] *= 1.0 - inputs.pert_delta;
      out.perturbed = true;
    }
  }
  return out;
}

void momentum_global_update(std::span<const float> merged,
                            std::span<float> global,
                            std::span<float> previous_global, double gamma) {
  assert(merged.size() == global.size());
  assert(global.size() == previous_global.size());
  vec::kernels().momentum_update(merged.data(), global.data(),
                                 previous_global.data(),
                                 static_cast<float>(gamma), merged.size());
}

namespace {

// Stack accumulator block: the merged value never touches memory outside
// this block, which is what removes the model-sized double buffer (and its
// traffic) from the merge path.
constexpr std::size_t kMergeBlock = 512;

// Fused reduce + update of elements [off, off+len) of one segment, where
// each source pointer i yields x_i[j] for the weighted sum. The vec merge
// kernels are element-wise in double, so the block stays bit-identical to
// the element-at-a-time reference on every ISA; the momentum finalize
// mirrors momentum_global_update exactly (same float expression, same
// order) — keep the two in sync or the determinism contract breaks.
inline void merge_block(std::span<const float* const> sources,
                        std::size_t off, std::size_t len,
                        const MergeUpdate& u, float* global, float* prev,
                        const vec::VecKernels& vk) {
  double acc[kMergeBlock];
  vk.merge_init(acc, sources[0] + off, u.weights[0], len);
  for (std::size_t i = 1; i < sources.size(); ++i) {
    vk.merge_accum(acc, sources[i] + off, u.weights[i], len);
  }
  float* g = global + off;
  float* p = prev + off;
  if (u.momentum) {
    vk.merge_finalize_momentum(acc, g, p, static_cast<float>(u.gamma), len);
  } else {
    vk.merge_finalize_plain(acc, g, p, len);
  }
}

// Quantized-source variant of merge_block: the accumulator starts at
// wsum * global (the untouched-mass term of the delta reconstruction) and
// each replica contributes w_i * dequant(code). Block == scale group on the
// dense path; on the touched-row path `group` stays the union-row index
// across a row's blocks.
static_assert(kQuantGroupCols == kMergeBlock,
              "quantized scale groups must cover whole merge blocks");

inline void merge_block_quantized(const QuantizedSources& src,
                                  std::size_t code_off, std::size_t group,
                                  std::size_t out_off, std::size_t len,
                                  double wsum, const MergeUpdate& u,
                                  float* global, float* prev,
                                  const vec::VecKernels& vk) {
  double acc[kMergeBlock];
  vk.merge_init(acc, global + out_off, wsum, len);
  if (src.precision == comm::MergePrecision::kInt8) {
    for (std::size_t i = 0; i < src.i8.size(); ++i) {
      vk.merge_accum_i8(acc, src.i8[i] + code_off, u.weights[i],
                        src.scales[i][group], len);
    }
  } else {
    for (std::size_t i = 0; i < src.fp16.size(); ++i) {
      vk.merge_accum_fp16(acc, src.fp16[i] + code_off, u.weights[i],
                          src.dequant_scale, len);
    }
  }
  float* g = global + out_off;
  float* p = prev + out_off;
  if (u.momentum) {
    vk.merge_finalize_momentum(acc, g, p, static_cast<float>(u.gamma), len);
  } else {
    vk.merge_finalize_plain(acc, g, p, len);
  }
}

inline void merge_range(std::span<const float* const> sources,
                        const MergeUpdate& u, float* global, float* prev,
                        std::size_t begin, std::size_t end,
                        const vec::VecKernels& vk) {
  for (std::size_t o = begin; o < end; o += kMergeBlock) {
    merge_block(sources, o, std::min(kMergeBlock, end - o), u, global, prev,
                vk);
  }
}

}  // namespace

void merge_segment(std::span<const float* const> replicas, std::size_t len,
                   const MergeUpdate& u, std::span<float> global,
                   std::span<float> prev, std::size_t min_shards,
                   const kernels::Context& ctx) {
  assert(replicas.size() == u.weights.size());
  assert(global.size() == len);
  assert(prev.size() == len);
  if (len == 0) return;
  const std::size_t work = len * replicas.size();
  std::size_t shards = std::max<std::size_t>(1, min_shards);
  if (ctx.should_parallelize(work)) {
    shards = std::max(shards, ctx.workers_for(len));
  }
  shards = std::min(shards, len);
  const auto& vk = vec::kernels();
  kernels::parallel_for_ranges(
      ctx, shards, work, [&](std::size_t s0, std::size_t s1) {
        for (std::size_t s = s0; s < s1; ++s) {
          merge_range(replicas, u, global.data(), prev.data(),
                      len * s / shards, len * (s + 1) / shards, vk);
        }
      });
}

void merge_segment_quantized(const QuantizedSources& src, std::size_t len,
                             double wsum, const MergeUpdate& u,
                             std::span<float> global, std::span<float> prev,
                             std::size_t min_shards,
                             const kernels::Context& ctx) {
  assert(src.num_replicas() == u.weights.size());
  assert(global.size() == len);
  assert(prev.size() == len);
  if (len == 0) return;
  const std::size_t num_groups =
      (len + kQuantGroupCols - 1) / kQuantGroupCols;
  const std::size_t work = len * u.weights.size();
  // Shards split on group boundaries so every block sees one scale; group
  // scales are fixed by element index, so the per-element math (and the
  // result) is independent of the shard count.
  std::size_t shards = std::max<std::size_t>(1, min_shards);
  if (ctx.should_parallelize(work)) {
    shards = std::max(shards, ctx.workers_for(len));
  }
  shards = std::min(shards, num_groups);
  const auto& vk = vec::kernels();
  kernels::parallel_for_ranges(
      ctx, shards, work, [&](std::size_t s0, std::size_t s1) {
        for (std::size_t s = s0; s < s1; ++s) {
          const std::size_t g0 = num_groups * s / shards;
          const std::size_t g1 = num_groups * (s + 1) / shards;
          for (std::size_t g = g0; g < g1; ++g) {
            const std::size_t off = g * kQuantGroupCols;
            merge_block_quantized(src, off, g, off,
                                  std::min(kQuantGroupCols, len - off), wsum,
                                  u, global.data(), prev.data(), vk);
          }
        }
      });
}

void merge_touched_rows_quantized(const QuantizedSources& src,
                                  std::span<const std::uint32_t> rows,
                                  std::size_t cols, double wsum,
                                  const MergeUpdate& u, float* global,
                                  float* prev, const kernels::Context& ctx) {
  assert(src.num_replicas() == u.weights.size());
  if (rows.empty() || cols == 0) return;
  const std::size_t work = rows.size() * cols * u.weights.size();
  const auto& vk = vec::kernels();
  kernels::parallel_for_ranges(
      ctx, rows.size(), work, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
          const std::size_t out_base =
              static_cast<std::size_t>(rows[r]) * cols;
          const std::size_t code_base = r * cols;
          for (std::size_t o = 0; o < cols; o += kMergeBlock) {
            merge_block_quantized(src, code_base + o, /*group=*/r,
                                  out_base + o, std::min(kMergeBlock, cols - o),
                                  wsum, u, global, prev, vk);
          }
        }
      });
}

void merge_touched_rows(std::span<const float* const> replicas,
                        std::span<const std::uint32_t> rows, std::size_t cols,
                        const MergeUpdate& u, float* global, float* prev,
                        const kernels::Context& ctx) {
  assert(replicas.size() == u.weights.size());
  if (rows.empty() || cols == 0) return;
  const std::size_t work = rows.size() * cols * replicas.size();
  const auto& vk = vec::kernels();
  kernels::parallel_for_ranges(
      ctx, rows.size(), work, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
          const std::size_t base = static_cast<std::size_t>(rows[r]) * cols;
          for (std::size_t o = 0; o < cols; o += kMergeBlock) {
            merge_block(replicas, base + o,
                        std::min(kMergeBlock, cols - o), u, global, prev, vk);
          }
        }
      });
}

void merge_untouched_rows(const sparse::RowSet& touched, std::size_t num_rows,
                          std::size_t cols, const MergeUpdate& u,
                          std::span<float> global, std::span<float> prev,
                          const kernels::Context& ctx) {
  assert(global.size() == num_rows * cols);
  assert(prev.size() == global.size());
  if (num_rows == 0 || cols == 0) return;
  const std::size_t n = u.weights.size();
  // Every "replica" source aliases the global base: untouched rows are
  // bit-equal to global since the last broadcast, so feeding global through
  // the same merge_block reproduces the dense kernel's n-term sum without
  // touching any replica memory. merge_block reads the whole block into the
  // accumulator before the finalize loop writes it, so the alias is safe.
  const std::vector<const float*> sources(n, global.data());
  const std::size_t untouched =
      num_rows - std::min(num_rows, touched.size());
  const std::size_t work = untouched * cols * n;
  const auto& vk = vec::kernels();
  kernels::parallel_for_ranges(
      ctx, num_rows, work, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
          if (touched.contains(static_cast<std::uint32_t>(r))) continue;
          const std::size_t base = r * cols;
          for (std::size_t o = 0; o < cols; o += kMergeBlock) {
            merge_block(sources, base + o,
                        std::min(kMergeBlock, cols - o), u, global.data(),
                        prev.data(), vk);
          }
        }
      });
}

std::vector<double> expand_alive_weights(
    std::span<const double> alive_weights,
    std::span<const std::size_t> alive_indices, std::size_t num_replicas) {
  assert(alive_weights.size() == alive_indices.size());
  std::vector<double> full(num_replicas, 0.0);
  for (std::size_t i = 0; i < alive_indices.size(); ++i) {
    assert(alive_indices[i] < num_replicas);
    full[alive_indices[i]] = alive_weights[i];
  }
  return full;
}

}  // namespace hetero::core
