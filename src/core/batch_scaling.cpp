#include "core/batch_scaling.h"

#include <cassert>
#include <cmath>

namespace hetero::core {

BatchScalingOutcome scale_batch_sizes(std::vector<GpuSgdState>& gpus,
                                      const BatchScalingParams& params) {
  BatchScalingOutcome outcome;
  if (gpus.empty()) return outcome;
  assert(params.batch_min > 0 && params.batch_min <= params.batch_max);
  assert(params.beta >= 0.0);

  double total = 0.0;
  for (const auto& g : gpus) total += static_cast<double>(g.updates);
  const double mean = total / static_cast<double>(gpus.size());
  outcome.mean_updates = mean;

  for (auto& g : gpus) {
    const double u = static_cast<double>(g.updates);
    const double b = static_cast<double>(g.batch_size);
    if (u > mean) {
      // Faster GPU: grow the batch, bounded by b_max (Algorithm 1 line 3).
      const double grown = b + params.beta * (u - mean);
      const auto new_b = static_cast<std::size_t>(std::llround(grown));
      if (new_b <= params.batch_max && new_b != g.batch_size) {
        g.learning_rate *= static_cast<double>(new_b) / b;  // linear scaling
        g.batch_size = new_b;
        outcome.any_change = true;
      }
    } else if (u < mean) {
      // Slower GPU: shrink the batch, bounded by b_min (line 6).
      const double shrunk = b - params.beta * (mean - u);
      const auto new_b = static_cast<std::size_t>(std::llround(shrunk));
      if (shrunk >= static_cast<double>(params.batch_min) &&
          new_b != g.batch_size) {
        g.learning_rate *= static_cast<double>(new_b) / b;
        g.batch_size = new_b;
        outcome.any_change = true;
      }
    }
  }
  return outcome;
}

ScalingScheduler::ScalingScheduler(std::size_t stability_window,
                                   std::size_t max_interval)
    : stability_window_(std::max<std::size_t>(1, stability_window)),
      max_interval_(std::max<std::size_t>(1, max_interval)) {}

bool ScalingScheduler::observe(const std::vector<std::size_t>& batch_sizes) {
  if (previous_.size() != batch_sizes.size()) {
    previous_ = batch_sizes;
    last_direction_.assign(batch_sizes.size(), 0);
    since_last_scale_ = 0;
    return true;  // first observation: scale at the default cadence
  }

  bool any_change = false;
  bool all_reversals = true;
  for (std::size_t g = 0; g < batch_sizes.size(); ++g) {
    int direction = 0;
    if (batch_sizes[g] > previous_[g]) direction = 1;
    if (batch_sizes[g] < previous_[g]) direction = -1;
    if (direction != 0) {
      any_change = true;
      // A reversal means this GPU bounced back against its previous move.
      if (last_direction_[g] == 0 || direction != -last_direction_[g]) {
        all_reversals = false;
      }
      last_direction_[g] = direction;
    }
  }
  previous_ = batch_sizes;

  if (!any_change) {
    ++steps_without_change_;
    reversal_streak_ = 0;
  } else if (all_reversals) {
    ++reversal_streak_;
    steps_without_change_ = 0;
  } else {
    steps_without_change_ = 0;
    reversal_streak_ = 0;
    // Genuine drift: fall back to scaling at every mega-batch.
    interval_ = 1;
    stable_ = oscillating_ = false;
  }

  stable_ = steps_without_change_ >= stability_window_;
  oscillating_ = reversal_streak_ >= stability_window_;
  if ((stable_ || oscillating_) && interval_ < max_interval_) {
    interval_ *= 2;
    steps_without_change_ = 0;
    reversal_streak_ = 0;
  }

  if (++since_last_scale_ >= interval_) {
    since_last_scale_ = 0;
    return true;
  }
  return false;
}

ScalingSchedulerState ScalingScheduler::snapshot() const {
  return ScalingSchedulerState{interval_,    since_last_scale_,
                               stable_,      oscillating_,
                               previous_,    last_direction_,
                               steps_without_change_, reversal_streak_};
}

void ScalingScheduler::restore(const ScalingSchedulerState& state) {
  interval_ = state.interval;
  since_last_scale_ = state.since_last_scale;
  stable_ = state.stable;
  oscillating_ = state.oscillating;
  previous_ = state.previous;
  last_direction_ = state.last_direction;
  steps_without_change_ = state.steps_without_change;
  reversal_streak_ = state.reversal_streak;
}

}  // namespace hetero::core
