#include "core/executor.h"

#include <condition_variable>
#include <mutex>
#include <thread>

namespace hetero::core {

struct ThreadedExecutor::Manager {
  util::EventQueue<std::function<void()>> queue;
  std::thread thread;
  std::mutex mutex;
  std::condition_variable idle_cv;
  std::size_t pending = 0;

  Manager() {
    thread = std::thread([this] {
      while (auto work = queue.pop()) {
        (*work)();
        {
          std::lock_guard<std::mutex> lock(mutex);
          --pending;
        }
        idle_cv.notify_all();
      }
    });
  }

  ~Manager() {
    queue.close();
    thread.join();
  }

  void submit(std::function<void()> work) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      ++pending;
    }
    queue.push(std::move(work));
  }

  void wait_idle() {
    std::unique_lock<std::mutex> lock(mutex);
    idle_cv.wait(lock, [this] { return pending == 0; });
  }
};

ThreadedExecutor::ThreadedExecutor(std::size_t num_gpus) {
  managers_.reserve(num_gpus);
  for (std::size_t i = 0; i < num_gpus; ++i) {
    managers_.push_back(std::make_unique<Manager>());
  }
}

ThreadedExecutor::~ThreadedExecutor() = default;

void ThreadedExecutor::dispatch(std::size_t gpu, std::function<void()> work) {
  managers_.at(gpu)->submit(std::move(work));
}

void ThreadedExecutor::barrier() {
  for (auto& m : managers_) m->wait_idle();
}

std::unique_ptr<Executor> make_executor(bool threaded, std::size_t num_gpus) {
  if (threaded) return std::make_unique<ThreadedExecutor>(num_gpus);
  return std::make_unique<InlineExecutor>();
}

}  // namespace hetero::core
