// Configuration for the HeteroGPU trainers.
//
// Defaults follow the paper's methodology (Section V-A):
//   - the initial batch size is b_max (chosen so GPU memory/utilization is
//     maximized),
//   - b_min = b_max / 8,
//   - batch size scaling parameter beta = b_min / 2,
//   - learning rates follow the linear scaling rule from b_max's rate,
//   - a mega-batch is 100 batches of size b_max,
//   - perturbation threshold pert_thr = 0.1, factor delta = 0.1,
//   - momentum gamma = 0.9.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "comm/allreduce.h"
#include "core/merging.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "sim/device.h"

namespace hetero::core {

enum class ExecutionMode {
  kDeterministic,  // discrete-event loop, single thread, bit-reproducible
  kThreaded,       // real GPU-manager threads + event queues (Fig. 3)
};

struct TrainerConfig {
  // --- model -----------------------------------------------------------
  /// Architecture family (nn::make_model). kMlp is the paper's 3-layer
  /// model; kDeep enables multi-layer stacks via `hidden_layers`.
  nn::ModelKind model_kind = nn::ModelKind::kMlp;
  std::size_t hidden = 64;
  /// Hidden widths for kDeep (one or more). Empty = {hidden}, so existing
  /// configs keep working unchanged.
  std::vector<std::size_t> hidden_layers;

  /// Effective hidden-layer list for the configured model kind.
  std::vector<std::size_t> derived_hidden_layers() const {
    return hidden_layers.empty() ? std::vector<std::size_t>{hidden}
                                 : hidden_layers;
  }

  // --- SGD hyperparameters ----------------------------------------------
  /// b_max; also the initial batch size. 0 = derive from simulated GPU
  /// memory ("the initial batch size is chosen such that the GPU memory —
  /// and utilization — are maximized", Section V-A): the largest power of
  /// two whose training state fits on every device, capped at 1024.
  std::size_t batch_max = 128;
  std::size_t batch_min = 0;             // b_min; 0 = b_max / 8
  double beta = 0.0;                     // scaling parameter; 0 = b_min / 2
  double learning_rate = 0.1;            // optimal rate for b_max
  double momentum_gamma = 0.9;           // Algorithm 2 momentum
  double pert_threshold = 0.1;           // pert_thr
  double pert_delta = 0.1;               // perturbation factor

  // --- schedule ----------------------------------------------------------
  std::size_t batches_per_megabatch = 100;  // mega-batch = this * batch_max
  std::size_t num_megabatches = 10;         // experiment length
  double virtual_time_budget = 0.0;         // seconds; 0 = unlimited

  /// Early stopping ("SGD can be stopped ... when there is no significant
  /// drop in the error", Section II): stop when top-1 accuracy has not
  /// improved by at least `early_stop_delta` for `early_stop_patience`
  /// consecutive mega-batches. patience 0 disables.
  std::size_t early_stop_patience = 0;
  double early_stop_delta = 0.0;

  // --- feature toggles (for ablations) ------------------------------------
  bool enable_batch_scaling = true;     // Algorithm 1 on/off
  bool enable_perturbation = true;      // Algorithm 2 perturbation on/off
  bool enable_momentum = true;          // Algorithm 2 momentum on/off
  bool dynamic_scheduling = true;       // false = static round-robin batches
  bool fused_kernels = true;            // Section IV kernel fusion

  /// Merge-weight normalization rule (Algorithm 2 / Section III-B
  /// alternatives). kAuto is the paper's default.
  MergeNormalization merge_normalization = MergeNormalization::kAuto;

  /// When true, batch size scaling runs on the adaptive cadence of
  /// Section III-A (interval widens once batch sizes stabilize or
  /// oscillate) instead of after every mega-batch.
  bool adaptive_scaling_cadence = false;

  /// L2 weight decay coefficient (0 = off). Applied with the sparse-update
  /// rule: only parameters touched by the batch decay. Semantics per
  /// optimizer (nn/optimizer.h): coupled L2 for sgd/adam/adagrad, decoupled
  /// for adamw.
  double weight_decay = 0.0;

  /// Update rule applied by every replica (and by the global model of the
  /// gradient-aggregating trainers). Defaults to fused SGD — bit-identical
  /// to the pre-optimizer-refactor trainers. Adam/AdamW/Adagrad keep lazy
  /// touched-row state for the sparse input layer (nn/optimizer.h).
  nn::OptimizerConfig optimizer;

  /// Merge-boundary policy for per-replica optimizer state (moments,
  /// accumulators, lazy row counters). Ignored for sgd (no state).
  MomentMerge moment_merge = MomentMerge::kAverage;

  /// Learning-rate warmup over the first `warmup_megabatches` mega-batches
  /// (linear ramp from lr/width to lr, the Goyal et al. recipe the paper
  /// cites for its batch-scaling rule).
  std::size_t warmup_megabatches = 0;

  /// Step learning-rate decay: multiply the effective rate by `lr_decay`
  /// every `lr_decay_every` mega-batches (0 = no decay). Applies on top of
  /// warmup and Algorithm 1's linear batch scaling.
  double lr_decay = 1.0;
  std::size_t lr_decay_every = 0;

  /// CROSSBOW synchronous-model-averaging elastic rate (learner pull toward
  /// the central average and central-average correction rate).
  double crossbow_eta = 0.1;

  // --- topology -------------------------------------------------------------
  /// Simulated server nodes. The device list is laid out node-major (GPUs
  /// split evenly across nodes, CPU replicas at the tail) and the merge
  /// becomes two-level past one node: the configured all-reduce within each
  /// node over peer links, then a chunked ring over one leader per node on
  /// the network link. 1 = the original single server (bit-identical cost
  /// and model).
  std::size_t num_nodes = 1;

  /// CPU compute replicas appended after the GPUs in the device list
  /// (round-robined across nodes). They train like any other replica — the
  /// adaptive batch scaler absorbs their 10-50x slowdown — and their merge
  /// traffic rides the host (PCIe) link instead of the peer fabric.
  std::size_t cpu_replicas = 0;

  /// Inter-node network link (Ethernet/IB-class; default 100 Gb
  /// InfiniBand: 12.5 GB/s, 50 us). Unused at num_nodes == 1.
  double net_bandwidth_gbs = 12.5;
  double net_latency_us = 50.0;

  // --- communication -------------------------------------------------------
  comm::AllReduceAlgo allreduce = comm::AllReduceAlgo::kRingMultiStream;
  std::size_t allreduce_streams = 0;    // 0 = number of GPUs (paper optimum)

  /// Delta-aware merge: replicas track the union of W1 rows their mega-batch
  /// touched, and the merge reduces/rebroadcasts only the cross-replica
  /// union of touched rows — untouched rows (bit-identical across replicas
  /// since the last broadcast) get the closed-form sum_i w_i * global_row
  /// scaling plus momentum in one pass. Bit-identical to the dense merge by
  /// construction; the communication charge shrinks to the delta bytes
  /// (touched rows x hidden) plus the dense b1/W2/b2 tail. Valid for
  /// trainers whose replica updates all flow through run_update_step /
  /// run_gradient_step (adaptive, elastic, sync); trainers that mutate W1
  /// through dispatch_math must leave this off.
  bool sparse_merge = false;

  /// Merge-payload compression (DESIGN.md §10): quantize the shipped merge
  /// deltas to fp16 (dynamic loss scale) or int8 (per-group scales) with
  /// per-replica error-feedback residuals. kFp32 ships raw floats and takes
  /// the bit-exact oracle merge path; fp16/int8 cut the element payload
  /// 2x/4x at a small controlled accuracy cost (the residuals re-inject the
  /// quantization error into the next merge). Composes with sparse_merge
  /// (only the touched-row delta + dense tail is quantized) and with the
  /// fault subsystem (residuals reset on crash/join, checkpointed for
  /// deterministic resume).
  comm::MergePrecision merge_precision = comm::MergePrecision::kFp32;

  // --- evaluation -----------------------------------------------------------
  std::size_t eval_samples = 1000;      // test prefix per mega-batch (0=all)

  // --- runtime ---------------------------------------------------------------
  ExecutionMode mode = ExecutionMode::kDeterministic;
  std::uint64_t seed = 12345;

  /// Worker threads for the CPU compute kernels (spmm/gemm/sparse update)
  /// of each replica's training step. 1 = serial (default, and what the
  /// deterministic tests use); 0 = hardware concurrency. The runtime shares
  /// one pool across all virtual GPUs and hands each workspace a
  /// kernels::Context; per-GPU counts can be adjusted afterwards with
  /// MultiGpuRuntime::set_kernel_threads. Results are bit-identical across
  /// thread counts (kernels partition output rows).
  std::size_t kernel_threads = 1;

  /// Multiplier on epoch compute time modelling a heavier framework stack.
  /// 1.0 for the HeteroGPU implementations; the TensorFlow baseline uses
  /// ~1.4 (the paper attributes part of TF's gap to slower epoch execution
  /// and mirrored aggregation).
  double framework_overhead = 1.0;

  /// Workload scale multiplier on kernel flops/bytes. The synthetic
  /// datasets are ~50x smaller than Amazon-670k/Delicious-200k, which would
  /// make per-batch compute unrealistically small relative to the fixed
  /// kernel-launch overhead; compute_scale restores the full-scale
  /// compute-to-overhead ratio (each synthetic sample stands for
  /// compute_scale real samples' worth of work). Applies to every GPU
  /// method identically; SlideConfig::compute_scale must match.
  double compute_scale = 1.0;

  /// Scale multiplier on model bytes for communication costs (all-reduce,
  /// host round trips). Kept at 1.0 by default: merging is amortized over a
  /// mega-batch in every regime, so the headline results do not depend on
  /// it, but the ablation bench uses it to study comm-bound regimes.
  double comm_scale = 1.0;

  // Derived accessors implementing the Section V-A conventions.
  std::size_t derived_batch_min() const {
    return batch_min != 0 ? batch_min : batch_max / 8;
  }
  double derived_beta() const {
    return beta != 0.0 ? beta : static_cast<double>(derived_batch_min()) / 2.0;
  }
  std::size_t megabatch_samples() const {
    return batches_per_megabatch * batch_max;
  }
  /// Linear learning-rate scaling rule: lr(b) = lr(b_max) * b / b_max.
  double lr_for_batch(std::size_t b) const {
    return learning_rate * static_cast<double>(b) /
           static_cast<double>(batch_max);
  }
};

}  // namespace hetero::core
