#include "core/runtime.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>

#include "core/merging.h"
#include "tensor/vec/vec.h"

#include "util/logging.h"

namespace hetero::core {

namespace {

// Topology the runtime's device list implies: the last cfg.cpu_replicas
// entries are CPU compute replicas, the GPUs in front split node-major
// across cfg.num_nodes servers. At one node with no CPU replicas the link
// model degenerates to the original default_links() bit-for-bit.
sim::LinkModel build_links(const TrainerConfig& cfg,
                           std::size_t num_devices) {
  const std::size_t nodes = std::max<std::size_t>(1, cfg.num_nodes);
  const std::size_t cpus = std::min(cfg.cpu_replicas, num_devices);
  const auto topo =
      sim::Topology::partitioned(nodes, num_devices - cpus, cpus);
  return sim::cluster_links(topo, cfg.net_bandwidth_gbs,
                            cfg.net_latency_us);
}

}  // namespace

MultiGpuRuntime::MultiGpuRuntime(const data::XmlDataset& dataset,
                                 const TrainerConfig& cfg,
                                 std::vector<sim::DeviceSpec> devices)
    : dataset_(dataset),
      cfg_(cfg),
      links_(build_links(cfg, devices.size())),
      stream_(dataset.train.num_samples(), cfg.seed ^ 0xa5a5a5a5ULL) {
  assert(!devices.empty());
  const std::size_t num_features = dataset.train.features.cols();
  const std::size_t num_classes = dataset.train.labels.cols();
  const auto hidden_layers = cfg.derived_hidden_layers();

  util::Rng init_rng(cfg.seed);
  global_ = nn::make_model(cfg.model_kind, num_features, hidden_layers,
                           num_classes);
  global_->init(init_rng);
  prev_global_ = global_->clone();
  global_optimizer_ = nn::Optimizer::make(cfg_.optimizer, *global_);

  const std::size_t n = devices.size();
  const std::size_t streams =
      cfg_.allreduce_streams != 0 ? cfg_.allreduce_streams : n;
  reducer_ =
      std::make_unique<comm::AllReducer>(cfg_.allreduce, links_, streams);
  executor_ =
      make_executor(cfg_.mode == ExecutionMode::kThreaded, n);

  util::Rng seeder(cfg.seed ^ 0x5bd1e995ULL);
  for (std::size_t g = 0; g < n; ++g) {
    gpus_.push_back(std::make_unique<sim::VirtualGpu>(
        static_cast<int>(g), devices[g], seeder.next_u64(), streams));
    // Persistent allocations: model replica + dense gradients plus one
    // model-sized state matrix per optimizer slot (adam/adamw: 2, adagrad:
    // 1, sgd: 0) stay resident for the whole run.
    gpus_.back()->allocate(
        (2 + global_optimizer_->num_slots()) * global_->num_bytes());
    replicas_.push_back(global_->clone());
  }
  for (std::size_t g = 0; g < n; ++g) {
    workspaces_.push_back(global_->make_workspace());
    optimizers_.push_back(nn::Optimizer::make(cfg_.optimizer, *replicas_[g]));
  }
  // Cap absurd requests (e.g. a negative CLI value cast through size_t)
  // before sizing the pool; oversubscription past this helps nobody.
  constexpr std::size_t kMaxKernelThreads = 256;
  const std::size_t kernel_threads = std::min(
      cfg_.kernel_threads != 0
          ? cfg_.kernel_threads
          : std::max<std::size_t>(1, std::thread::hardware_concurrency()),
      kMaxKernelThreads);
  if (kernel_threads > 1) {
    kernel_pool_ = std::make_unique<util::ThreadPool>(kernel_threads);
    for (auto& ws : workspaces_) {
      ws->ctx = kernels::Context{kernel_pool_.get(), kernel_threads};
    }
    merge_ctx_ = kernels::Context{kernel_pool_.get(), kernel_threads};
  }
  last_batch_.resize(n);
  loss_slots_.resize(n);
  alive_.assign(n, 1);
  crash_time_.assign(n, 0.0);
  if (cfg_.sparse_merge) {
    touched_w1_.resize(n);
    for (auto& t : touched_w1_) t.reset(num_features);
    merge_union_.reset(num_features);
  }
  {
    // Flat layout of the model segments (residual indexing) and the dense
    // 512-block group count (cost-only billing of model-sized transfers).
    const auto segs = global_->segment_views();
    seg_offset_.resize(segs.size());
    std::size_t off = 0;
    for (std::size_t s = 0; s < segs.size(); ++s) {
      seg_offset_[s] = off;
      off += segs[s].size();
      model_groups_ += (segs[s].size() + kQuantGroupCols - 1) / kQuantGroupCols;
    }
  }
  if (compressed_merge()) {
    const std::size_t params = global_->num_parameters();
    residual_.resize(n);
    for (auto& r : residual_) r.assign(params, 0.0f);
    q16_scratch_.resize(n);
    q8_scratch_.resize(n);
    scale_scratch_.resize(n);
  }
  broadcast_global();
}

void MultiGpuRuntime::set_kernel_threads(std::size_t g, std::size_t n) {
  auto& ctx = workspaces_[g]->ctx;
  if (kernel_pool_ == nullptr || n <= 1) {
    ctx = kernels::Context{};
    return;
  }
  ctx.pool = kernel_pool_.get();
  ctx.num_threads = std::min(n, kernel_pool_->size());
}

double MultiGpuRuntime::gpu_free_at(std::size_t g) const {
  return gpus_[g]->next_schedulable(gpus_[g]->stream_free_at(0));
}

std::size_t MultiGpuRuntime::next_free_gpu() const {
  std::size_t best = gpus_.size();
  double best_free = std::numeric_limits<double>::infinity();
  for (std::size_t g = 0; g < gpus_.size(); ++g) {
    if (!replica_alive(g)) continue;
    const double free = gpu_free_at(g);
    if (free < best_free) {
      best = g;
      best_free = free;
    }
  }
  if (best == gpus_.size()) {
    throw std::runtime_error(
        "next_free_gpu: no alive schedulable device (all replicas crashed "
        "or stalled forever)");
  }
  return best;
}

std::size_t MultiGpuRuntime::num_alive() const {
  std::size_t n = 0;
  for (const char a : alive_) n += a != 0;
  return n;
}

void MultiGpuRuntime::schedule_crash(std::size_t g, double time) {
  assert(g < gpus_.size());
  gpus_[g]->kill_at(time);
  const MembershipEvent ev{g, time};
  auto it = std::upper_bound(
      pending_crashes_.begin() + static_cast<std::ptrdiff_t>(crash_cursor_),
      pending_crashes_.end(), ev,
      [](const MembershipEvent& a, const MembershipEvent& b) {
        return a.time < b.time;
      });
  pending_crashes_.insert(it, ev);
}

void MultiGpuRuntime::schedule_join(std::size_t g, double time) {
  assert(g < gpus_.size());
  const MembershipEvent ev{g, time};
  auto it = std::upper_bound(
      pending_joins_.begin() + static_cast<std::ptrdiff_t>(join_cursor_),
      pending_joins_.end(), ev,
      [](const MembershipEvent& a, const MembershipEvent& b) {
        return a.time < b.time;
      });
  pending_joins_.insert(it, ev);
}

std::vector<std::size_t> MultiGpuRuntime::apply_crashes_until(double t) {
  std::vector<std::size_t> crashed;
  while (crash_cursor_ < pending_crashes_.size() &&
         pending_crashes_[crash_cursor_].time <= t) {
    const auto ev = pending_crashes_[crash_cursor_++];
    if (!alive_[ev.device]) continue;  // already dead (e.g. restored state)
    alive_[ev.device] = 0;
    crash_time_[ev.device] = ev.time;
    // Drop the crashed replica's pending merge contributions: its
    // touched-row union, accumulated loss, and error-feedback residual
    // vanish with the device.
    if (cfg_.sparse_merge) touched_w1_[ev.device].clear();
    if (!residual_.empty()) {
      std::fill(residual_[ev.device].begin(), residual_[ev.device].end(),
                0.0f);
    }
    optimizers_[ev.device]->reset_state();
    loss_slots_[ev.device] = LossSlot{};
    fault_stats_.crashes += 1;
    crashed.push_back(ev.device);
  }
  return crashed;
}

std::vector<std::size_t> MultiGpuRuntime::apply_joins_until(double t) {
  std::vector<std::size_t> joined;
  while (join_cursor_ < pending_joins_.size() &&
         pending_joins_[join_cursor_].time <= t) {
    const auto ev = pending_joins_[join_cursor_++];
    if (alive_[ev.device]) continue;  // already a member (restored state)
    gpus_[ev.device]->revive_at(t);
    replicas_[ev.device]->copy_from(*global_);
    // A joiner seeds from the merged global model; any residual left from
    // its previous membership describes deltas that no longer exist.
    if (!residual_.empty()) {
      std::fill(residual_[ev.device].begin(), residual_[ev.device].end(),
                0.0f);
    }
    // The joiner's moments described a trajectory that ended at its crash;
    // it restarts from the merged global model with fresh optimizer state.
    optimizers_[ev.device]->reset_state();
    alive_[ev.device] = 1;
    fault_stats_.joins += 1;
    // Outage time: from the crash event to the merge boundary that
    // re-admitted the replica.
    fault_stats_.recovery_seconds += t - crash_time_[ev.device];
    joined.push_back(ev.device);
  }
  return joined;
}

MultiGpuRuntime::Batch MultiGpuRuntime::next_batch(std::size_t n) {
  const auto rows = stream_.next(n);
  return {dataset_.train.features.gather_rows(rows),
          dataset_.train.labels.gather_rows(rows)};
}

double MultiGpuRuntime::charge_step(std::size_t g, const sparse::CsrMatrix& x,
                                    double earliest_start) {
  // Host -> GPU batch transfer. With double buffering the transfer of this
  // batch overlaps the device's previous compute: it starts when the batch
  // is dispatched (earliest_start) and only delays the kernels if the
  // device would otherwise start sooner.
  const std::size_t batch_bytes =
      x.nnz() * (sizeof(std::uint32_t) + sizeof(float)) +
      (x.rows() + 1) * sizeof(std::size_t);
  const double xfer =
      links_.transfer_seconds(batch_bytes, sim::LinkModel::kHost,
                              static_cast<int>(g));
  const double data_ready = earliest_start + xfer;

  auto kernels = global_->step_kernels(x);
  const double work_scale = cfg_.framework_overhead * cfg_.compute_scale;
  if (work_scale != 1.0) {
    for (auto& k : kernels) {
      k.flops *= work_scale;
      k.bytes *= work_scale;
    }
  }
  // Transient training state (activations, deltas, batch CSR, sparse
  // gradient rows) must fit next to the resident model; this is the
  // constraint that caps b_max in Section V-A. The reservation is released
  // when the step completes (sequentially ordered on the compute stream).
  const double avg_nnz = x.rows() > 0 ? static_cast<double>(x.nnz()) /
                                            static_cast<double>(x.rows())
                                      : 0.0;
  const std::size_t step_bytes = global_->step_memory_bytes(x.rows(), avg_nnz);
  // Resolve the true kernel start (past any stall window) before touching
  // device state: a dead device must throw before the allocation so no
  // memory leaks on the unavailable path, and the OOM check must use the
  // memory cap in effect when the step actually runs.
  const double start = gpus_[g]->next_available(
      std::max(data_ready, gpus_[g]->stream_free_at(0)));
  if (gpus_[g]->dead_at(start)) {
    gpus_[g]->wait_all_until(gpus_[g]->dead_after());
    throw sim::DeviceUnavailable(static_cast<int>(g), start);
  }
  gpus_[g]->allocate(step_bytes, start);

  const double finish =
      gpus_[g]->submit(/*stream=*/0, kernels, data_ready, cfg_.fused_kernels,
                       /*active_managers=*/gpus_.size());
  gpus_[g]->free(step_bytes);
  if (tracer_ != nullptr) {
    tracer_->add({"sgd_step b=" + std::to_string(x.rows()) +
                      " nnz=" + std::to_string(x.nnz()),
                  "compute", static_cast<int>(g), 0, start, finish - start});
  }
  return finish;
}

double MultiGpuRuntime::run_update_step(std::size_t g, Batch batch, double lr,
                                        double earliest_start) {
  const double finish = charge_step(g, batch.x, earliest_start);
  auto stored = std::make_shared<Batch>(std::move(batch));
  last_batch_[g] = stored;
  executor_->dispatch(g, [this, g, stored, lr] {
    // compute + apply through the optimizer: for sgd this is bit-identical
    // to the old fused train_step (train_step == compute_gradients +
    // apply_gradients, and SgdOptimizer::apply IS apply_gradients).
    const auto stats = replicas_[g]->compute_gradients(stored->x, stored->y,
                                                       *workspaces_[g]);
    optimizers_[g]->apply(*replicas_[g], *workspaces_[g],
                          static_cast<float>(lr),
                          static_cast<float>(cfg_.weight_decay));
    // Delta-merge bookkeeping rides inside the manager's work item: the
    // workspace gradient keys are only valid until the next step on g.
    if (cfg_.sparse_merge) {
      touched_w1_[g].add(workspaces_[g]->touched_input_rows());
    }
    loss_slots_[g].sum += stats.loss;
    loss_slots_[g].count += 1;
  });
  return finish;
}

double MultiGpuRuntime::run_gradient_step(std::size_t g, Batch batch,
                                          double earliest_start) {
  const double finish = charge_step(g, batch.x, earliest_start);
  auto stored = std::make_shared<Batch>(std::move(batch));
  last_batch_[g] = stored;
  executor_->dispatch(g, [this, g, stored] {
    const auto stats =
        replicas_[g]->compute_gradients(stored->x, stored->y,
                                        *workspaces_[g]);
    // Conservative for gradient-only steps (the rows may be applied later
    // by the trainer): over-tracking only widens the reduced union, which
    // stays bit-identical — under-tracking is what would break the merge.
    if (cfg_.sparse_merge) {
      touched_w1_[g].add(workspaces_[g]->touched_input_rows());
    }
    loss_slots_[g].sum += stats.loss;
    loss_slots_[g].count += 1;
  });
  return finish;
}

double MultiGpuRuntime::take_mean_loss() {
  double sum = 0.0;
  std::size_t count = 0;
  for (auto& slot : loss_slots_) {
    sum += slot.sum;
    count += slot.count;
    slot = LossSlot{};
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double MultiGpuRuntime::host_roundtrip_seconds() const {
  return host_roundtrip_seconds(virtual_model_bytes());
}

comm::WirePayload MultiGpuRuntime::virtual_wire(std::size_t params,
                                                std::size_t groups) const {
  if (!compressed_merge()) {
    // Reproduce virtual_payload_bytes exactly (size_t cast included) so the
    // fp32 billing stays bit-identical to the uncompressed code path.
    return comm::WirePayload{
        static_cast<double>(virtual_payload_bytes(params)), 0.0};
  }
  comm::WirePayload w =
      comm::wire_payload(cfg_.merge_precision, groups, params);
  w.payload_bytes *= cfg_.comm_scale;
  w.metadata_bytes *= cfg_.comm_scale;
  return w;
}

comm::WirePayload MultiGpuRuntime::virtual_model_wire() const {
  return virtual_wire(global_->num_parameters(), model_groups_);
}

std::size_t MultiGpuRuntime::build_quant_groups(
    std::span<const std::uint32_t> union_rows, std::size_t hidden) {
  quant_groups_.clear();
  const auto segs = global_->segment_views();
  std::size_t dst = 0;
  const auto add_dense_segment = [&](std::size_t s) {
    const std::size_t len = segs[s].size();
    for (std::size_t o = 0; o < len; o += kQuantGroupCols) {
      const std::size_t blen = std::min(kQuantGroupCols, len - o);
      quant_groups_.push_back({s, o, seg_offset_[s] + o, dst, blen});
      dst += blen;
    }
  };
  if (cfg_.sparse_merge) {
    // One scale group per union W1 row (segment 0 by the Model contract),
    // then 512-blocks of the dense tail.
    for (const std::uint32_t r : union_rows) {
      const std::size_t off = static_cast<std::size_t>(r) * hidden;
      quant_groups_.push_back({0, off, seg_offset_[0] + off, dst, hidden});
      dst += hidden;
    }
    for (std::size_t s = 1; s < segs.size(); ++s) add_dense_segment(s);
  } else {
    for (std::size_t s = 0; s < segs.size(); ++s) add_dense_segment(s);
  }
  return dst;
}

double MultiGpuRuntime::host_roundtrip_seconds(std::size_t bytes) const {
  const double up =
      links_.transfer_seconds(bytes, 0, sim::LinkModel::kHost, 1);
  const double down = links_.transfer_seconds(bytes, sim::LinkModel::kHost, 0,
                                              gpus_.size());
  return up + down;
}

std::size_t MultiGpuRuntime::merge_optimizer_state(
    std::span<const std::size_t> alive_idx,
    std::span<const double> alive_weights) {
  const std::size_t num_slots = global_optimizer_->num_slots();
  if (num_slots == 0) return 0;  // sgd: nothing to merge
  const std::size_t n = alive_idx.size();
  switch (cfg_.moment_merge) {
    case MomentMerge::kKeep:
      return 0;
    case MomentMerge::kReset:
      for (const std::size_t g : alive_idx) optimizers_[g]->reset_state();
      return 0;
    case MomentMerge::kAverage:
      break;
  }

  // Algorithm-2 weights renormalized to sum 1: the perturbation may
  // deliberately denormalize the model weights, but state matrices are
  // magnitude-bearing (second moments, accumulators) and must stay a
  // convex combination.
  double wsum = 0.0;
  for (const double w : alive_weights) wsum += w;
  std::vector<double> nw(n);
  for (std::size_t i = 0; i < n; ++i) nw[i] = alive_weights[i] / wsum;

  // Per element: merged = float(sum_i nw_i * s_i[j]) accumulated in double
  // in replica index order, written back to every alive replica. Sharding
  // partitions elements without reordering any sum — bit-identical at any
  // thread count, like the model merge kernels.
  const auto average_span = [&](std::span<float* const> bases,
                                std::size_t off, std::size_t len) {
    for (std::size_t j = off; j < off + len; ++j) {
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        acc += nw[i] * static_cast<double>(bases[i][j]);
      }
      const float merged = static_cast<float>(acc);
      for (std::size_t i = 0; i < n; ++i) bases[i][j] = merged;
    }
  };
  const auto average_region = [&](std::span<float* const> bases,
                                  std::size_t len) {
    kernels::parallel_for_ranges(merge_ctx_, len, len * n,
                                 [&](std::size_t b, std::size_t e) {
                                   average_span(bases, b, e - b);
                                 });
  };

  const auto& info = global_->info();
  const std::size_t hidden = info.input_cols();
  std::vector<float*> bases(n);
  std::size_t shipped = 0;
  for (std::size_t slot = 0; slot < num_slots; ++slot) {
    std::vector<std::vector<std::span<float>>> views;
    views.reserve(n);
    for (const std::size_t g : alive_idx) {
      views.push_back(optimizers_[g]->slot_views(slot));
    }
    const std::size_t num_segments = views[0].size();
    std::size_t first_dense = 0;
    if (cfg_.sparse_merge) {
      // Segment 0: the touched union only — untouched rows keep local
      // state, which is still bit-equal across replicas (any previously
      // touched row was averaged at the merge that shipped it).
      for (std::size_t i = 0; i < n; ++i) bases[i] = views[i][0].data();
      const std::span<const std::uint32_t> rows = merge_rows_scratch_;
      kernels::parallel_for_ranges(
          merge_ctx_, rows.size(), rows.size() * hidden * n,
          [&](std::size_t r0, std::size_t r1) {
            for (std::size_t s = r0; s < r1; ++s) {
              average_span(bases,
                           static_cast<std::size_t>(rows[s]) * hidden,
                           hidden);
            }
          });
      shipped += rows.size() * hidden;
      first_dense = 1;
    }
    for (std::size_t seg = first_dense; seg < num_segments; ++seg) {
      for (std::size_t i = 0; i < n; ++i) bases[i] = views[i][seg].data();
      average_region(bases, views[0][seg].size());
      shipped += views[0][seg].size();
    }
  }

  // Lazy row counters (adam/adamw): a merged moment reflects the most
  // advanced replica's trajectory, so counters take the max — written back
  // so the survivor set stays bit-equal. Dense-tail step likewise.
  if (!optimizers_[alive_idx[0]]->row_steps().empty()) {
    std::vector<std::span<std::uint32_t>> steps;
    steps.reserve(n);
    for (const std::size_t g : alive_idx) {
      steps.push_back(optimizers_[g]->row_steps());
    }
    const auto sync_row = [&](std::size_t r) {
      std::uint32_t m = 0;
      for (std::size_t i = 0; i < n; ++i) m = std::max(m, steps[i][r]);
      for (std::size_t i = 0; i < n; ++i) steps[i][r] = m;
    };
    if (cfg_.sparse_merge) {
      for (const std::uint32_t r : merge_rows_scratch_) sync_row(r);
    } else {
      for (std::size_t r = 0; r < info.input_rows(); ++r) sync_row(r);
    }
  }
  std::uint64_t max_step = 0;
  for (const std::size_t g : alive_idx) {
    max_step = std::max(max_step, optimizers_[g]->step());
  }
  for (const std::size_t g : alive_idx) optimizers_[g]->set_step(max_step);
  return shipped;
}

MultiGpuRuntime::MergeTiming MultiGpuRuntime::merge_and_update(
    std::span<const double> weights, double sync_time) {
  assert(weights.size() == replicas_.size());
  math_barrier();

  MergeTiming timing;
  // Elastic membership: the merge group is the alive subset. Survivor
  // weights are compacted in replica index order, which preserves the
  // deterministic accumulation contract (replica 0 of the survivor set
  // initializes, the rest add in order) — bit-identical to a run over the
  // survivors alone.
  std::vector<std::size_t> alive_idx;
  alive_idx.reserve(replicas_.size());
  for (std::size_t g = 0; g < replicas_.size(); ++g) {
    if (alive_[g]) alive_idx.push_back(g);
  }
  const std::size_t n = alive_idx.size();
  assert(n > 0 && "merge_and_update: every replica is dead");
  if (n < replicas_.size()) fault_stats_.degraded_merges += 1;
  std::vector<double> alive_weights(n);
  for (std::size_t i = 0; i < n; ++i) alive_weights[i] = weights[alive_idx[i]];
  const MergeUpdate update{alive_weights, cfg_.momentum_gamma,
                           cfg_.enable_momentum};

  // Fused reduce + momentum over the model segments in place (Section IV:
  // the model update is executed by the scheduler — fewer CPU-GPU
  // transfers). No to_flat()/from_flat() staging and no model-sized
  // accumulator: the kernels stream each replica once and write only the
  // global/previous-global models; replicas are refreshed by the broadcast.
  auto global_segs = global_->segment_views();
  auto prev_segs = prev_global_->segment_views();
  std::vector<std::vector<std::span<float>>> replica_segs;
  replica_segs.reserve(n);
  for (const std::size_t g : alive_idx) {
    replica_segs.push_back(replicas_[g]->segment_views());
  }
  const std::size_t num_segments = global_segs.size();
  std::vector<const float*> bases(n);
  const auto merge_dense_segment = [&](std::size_t s) {
    for (std::size_t i = 0; i < n; ++i) bases[i] = replica_segs[i][s].data();
    merge_segment(bases, global_segs[s].size(), update, global_segs[s],
                  prev_segs[s], reducer_->num_streams(), merge_ctx_);
  };

  std::size_t payload_params = global_->num_parameters();
  std::size_t payload_groups = 0;
  if (!compressed_merge()) {
    // ---- fp32 (bit-exact oracle) path: ships raw floats. ----------------
    if (!cfg_.sparse_merge) {
      for (std::size_t s = 0; s < num_segments; ++s) merge_dense_segment(s);
    } else {
      // Delta path: only the cross-replica union of touched input-layer rows
      // is reduced (and later rebroadcast); untouched rows — bit-identical
      // across replicas since the last broadcast — collapse to the
      // closed-form sum_i w_i * global_row, same accumulation order. The
      // sparse layer is segment 0 of segment_views() by the Model contract.
      merge_union_.clear();
      // Crashed replicas' unions were dropped at apply_crashes_until; union
      // only the alive members so the reduced set matches the survivor run.
      for (const std::size_t g : alive_idx) merge_union_.add(touched_w1_[g]);
      merge_union_.sorted_rows(merge_rows_scratch_);
      const auto& info = global_->info();
      const std::size_t hidden = info.input_cols();
      for (std::size_t i = 0; i < n; ++i) bases[i] = replica_segs[i][0].data();
      merge_touched_rows(bases, merge_rows_scratch_, hidden, update,
                         global_segs[0].data(), prev_segs[0].data(),
                         merge_ctx_);
      merge_untouched_rows(merge_union_, info.input_rows(), hidden, update,
                           global_segs[0], prev_segs[0], merge_ctx_);
      for (std::size_t s = 1; s < num_segments; ++s) merge_dense_segment(s);
      for (auto& t : touched_w1_) t.clear();
      timing.touched_rows = merge_union_.size();
      // Communication payload: the touched-row delta plus the dense tail.
      payload_params =
          merge_union_.size() * hidden +
          (global_->num_parameters() - info.input_rows() * hidden);
    }
  } else {
    // ---- Compressed merge: ship quantized deltas with error feedback. ---
    // Each replica's contribution is its delta d_i = replica - global (the
    // pending residual folded in), quantized per cfg.merge_precision; the
    // fused merge reconstructs wsum*global + sum_i w_i*dequant(q_i). See
    // DESIGN.md §10 for the pass structure and determinism argument.
    const auto& info = global_->info();
    const std::size_t hidden = info.input_cols();
    std::span<const std::uint32_t> union_rows{};
    if (cfg_.sparse_merge) {
      merge_union_.clear();
      for (const std::size_t g : alive_idx) merge_union_.add(touched_w1_[g]);
      merge_union_.sorted_rows(merge_rows_scratch_);
      union_rows = merge_rows_scratch_;
      timing.touched_rows = merge_union_.size();
      for (auto& t : touched_w1_) t.clear();
    }
    const std::size_t elems = build_quant_groups(union_rows, hidden);
    const std::size_t num_groups = quant_groups_.size();
    payload_params = elems;
    payload_groups = num_groups;
    const auto& vk = vec::kernels();
    const bool is_i8 = cfg_.merge_precision == comm::MergePrecision::kInt8;
    // Summed merge weight for the global term of the delta reconstruction
    // (fixed summation order over the survivor set).
    double wsum = 0.0;
    for (const double w : alive_weights) wsum += w;

    // Pass A — error feedback: r += replica - global over the merge region
    // (pre-merge global). W1 rows outside the union keep their pending
    // residual until a later merge ships them.
    for (std::size_t i = 0; i < n; ++i) {
      float* res = residual_[alive_idx[i]].data();
      const auto& rsegs = replica_segs[i];
      kernels::parallel_for_ranges(
          merge_ctx_, num_groups, elems, [&](std::size_t g0, std::size_t g1) {
            for (std::size_t g = g0; g < g1; ++g) {
              const auto& q = quant_groups_[g];
              vk.ef_delta(rsegs[q.seg].data() + q.off,
                          global_segs[q.seg].data() + q.off, res + q.flat,
                          q.len);
            }
          });
    }

    // Pass B — quantize from the residuals (retry-safe: the residuals are
    // not modified until pass D).
    std::vector<const std::uint16_t*> code16(n, nullptr);
    std::vector<const std::int8_t*> code8(n, nullptr);
    std::vector<const float*> scale_ptrs(n, nullptr);
    // Scale the fp16 codes were actually quantized with (the loss-scale
    // guard may grow past it after a clean merge).
    float quant_scale = loss_scale_.scale;
    if (is_i8) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t g = alive_idx[i];
        q8_scratch_[g].resize(elems);
        scale_scratch_[g].resize(num_groups);
        float* scales = scale_scratch_[g].data();
        std::int8_t* codes = q8_scratch_[g].data();
        const float* res = residual_[g].data();
        kernels::parallel_for_ranges(
            merge_ctx_, num_groups, elems,
            [&](std::size_t g0, std::size_t g1) {
              for (std::size_t k = g0; k < g1; ++k) {
                const auto& q = quant_groups_[k];
                const float amax = vk.absmax(res + q.flat, q.len);
                float store = 0.0f;  // wire scale: code * store = value
                float mult = 0.0f;   // quantization multiplier
                if (amax > 0.0f && std::isfinite(amax)) {
                  store = amax / 127.0f;
                  mult = 127.0f / amax;
                }
                scales[k] = store;
                vk.quant_i8(res + q.flat, codes + q.dst, mult, q.len);
              }
            });
        code8[i] = codes;
        scale_ptrs[i] = scales;
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        q16_scratch_[alive_idx[i]].resize(elems);
      }
      // Dynamic loss scale: halve and requantize while any element
      // overflows fp16 range; only the *count being nonzero* matters, so
      // the retry decision is deterministic on every ISA.
      bool any_overflow = false;
      for (;;) {
        const float s = loss_scale_.scale;
        quant_scale = s;
        std::atomic<std::size_t> over{0};
        for (std::size_t i = 0; i < n; ++i) {
          const std::size_t g = alive_idx[i];
          std::uint16_t* codes = q16_scratch_[g].data();
          const float* res = residual_[g].data();
          kernels::parallel_for_ranges(
              merge_ctx_, num_groups, elems,
              [&](std::size_t g0, std::size_t g1) {
                std::size_t local = 0;
                for (std::size_t k = g0; k < g1; ++k) {
                  const auto& q = quant_groups_[k];
                  local += vk.quant_fp16(res + q.flat, codes + q.dst, s,
                                         q.len);
                }
                over.fetch_add(local, std::memory_order_relaxed);
              });
        }
        if (over.load(std::memory_order_relaxed) == 0) break;
        any_overflow = true;
        const float before = loss_scale_.scale;
        loss_scale_.on_overflow();
        if (loss_scale_.scale == before) break;  // at the floor; ship as-is
      }
      // Grow the scale only *after* this merge: the codes above were
      // quantized with quant_scale, so dequant must use exactly that scale
      // or every shipped delta lands at half magnitude on a growth merge.
      if (!any_overflow) loss_scale_.on_clean_merge();
      for (std::size_t i = 0; i < n; ++i) {
        code16[i] = q16_scratch_[alive_idx[i]].data();
      }
    }
    const float inv_scale = 1.0f / quant_scale;

    // Pass C — fused quantized merge + momentum, region by region.
    QuantizedSources qsrc;
    qsrc.precision = cfg_.merge_precision;
    qsrc.dequant_scale = inv_scale;
    std::vector<const std::uint16_t*> r16(n);
    std::vector<const std::int8_t*> r8(n);
    std::vector<const float*> rsc(n);
    const auto region_sources = [&](std::size_t code_off,
                                    std::size_t scale_off) {
      if (is_i8) {
        for (std::size_t i = 0; i < n; ++i) {
          r8[i] = code8[i] + code_off;
          rsc[i] = scale_ptrs[i] + scale_off;
        }
        qsrc.i8 = r8;
        qsrc.scales = rsc;
        qsrc.fp16 = {};
      } else {
        for (std::size_t i = 0; i < n; ++i) r16[i] = code16[i] + code_off;
        qsrc.fp16 = r16;
        qsrc.i8 = {};
        qsrc.scales = {};
      }
    };
    std::size_t code_off = 0;
    std::size_t scale_off = 0;
    std::size_t first_dense = 0;
    if (cfg_.sparse_merge) {
      region_sources(0, 0);
      merge_touched_rows_quantized(qsrc, union_rows, hidden, wsum, update,
                                   global_segs[0].data(),
                                   prev_segs[0].data(), merge_ctx_);
      merge_untouched_rows(merge_union_, info.input_rows(), hidden, update,
                           global_segs[0], prev_segs[0], merge_ctx_);
      code_off = union_rows.size() * hidden;
      scale_off = union_rows.size();
      first_dense = 1;
    }
    for (std::size_t s = first_dense; s < num_segments; ++s) {
      region_sources(code_off, scale_off);
      merge_segment_quantized(qsrc, global_segs[s].size(), wsum, update,
                              global_segs[s], prev_segs[s],
                              reducer_->num_streams(), merge_ctx_);
      code_off += global_segs[s].size();
      scale_off +=
          (global_segs[s].size() + kQuantGroupCols - 1) / kQuantGroupCols;
    }

    // Pass D — residual update: r -= dequant(q), leaving exactly the
    // quantization error to be re-injected into the next merge.
    for (std::size_t i = 0; i < n; ++i) {
      float* res = residual_[alive_idx[i]].data();
      const std::uint16_t* codes16 = code16[i];
      const std::int8_t* codes8 = code8[i];
      const float* scales = scale_ptrs[i];
      kernels::parallel_for_ranges(
          merge_ctx_, num_groups, elems, [&](std::size_t g0, std::size_t g1) {
            for (std::size_t k = g0; k < g1; ++k) {
              const auto& q = quant_groups_[k];
              if (is_i8) {
                vk.residual_i8(codes8 + q.dst, scales[k], res + q.flat,
                               q.len);
              } else {
                vk.residual_fp16(codes16 + q.dst, inv_scale, res + q.flat,
                                 q.len);
              }
            }
          });
    }
  }
  // Merge-boundary policy for the per-replica optimizer state; must run
  // while merge_rows_scratch_ still holds this merge's touched union.
  const std::size_t moment_params =
      merge_optimizer_state(alive_idx, alive_weights);
  broadcast_global();

  // Charge the collective at the simulated (paper-scale) payload size, like
  // every other kernel/transfer cost; compressed merges bill the quantized
  // element bytes plus their scale/header metadata. The moment-merge state
  // exchange ships as raw fp32 regardless of cfg.merge_precision.
  auto wire = virtual_wire(payload_params, payload_groups);
  if (moment_params != 0) {
    wire.payload_bytes +=
        static_cast<double>(virtual_payload_bytes(moment_params));
  }
  // Bill the collective over the surviving ranks' actual topology: on one
  // node this is the flat collective (bit-identical to the scalar query);
  // across nodes it is the two-level intra-ring + chunked inter-node ring.
  const auto cost = reducer_->cost(std::span<const std::size_t>(alive_idx),
                                   wire);
  timing.allreduce_seconds = cost.seconds;
  timing.payload_bytes = cost.payload_bytes;
  timing.wire_bytes = cost.wire_bytes;
  timing.host_roundtrip_seconds =
      host_roundtrip_seconds(static_cast<std::size_t>(wire.total()));

  timing.finish =
      sync_time + timing.allreduce_seconds + timing.host_roundtrip_seconds;
  // Dead devices' clocks stay frozen at the crash point (they rejoin via
  // revive_at, which advances them to the admitting boundary).
  for (std::size_t g = 0; g < gpus_.size(); ++g) {
    if (alive_[g]) gpus_[g]->wait_all_until(timing.finish);
  }
  if (tracer_ != nullptr) {
    for (std::size_t g = 0; g < gpus_.size(); ++g) {
      tracer_->add({"allreduce_merge", "comm", static_cast<int>(g), 0,
                    sync_time, timing.allreduce_seconds});
    }
    tracer_->add({"momentum_global_update", "merge", /*device=*/-1, 0,
                  sync_time + timing.allreduce_seconds,
                  timing.host_roundtrip_seconds});
  }
  if (publish_hook_) publish_hook_(*global_, timing.finish);
  return timing;
}

void MultiGpuRuntime::broadcast_global() {
  for (std::size_t g = 0; g < replicas_.size(); ++g) {
    if (!alive_.empty() && !alive_[g]) continue;  // dead replicas rejoin later
    replicas_[g]->copy_from(*global_);
  }
}

void MultiGpuRuntime::record_curve_point(TrainResult& result, double vtime,
                                         std::size_t megabatch,
                                         double train_loss) const {
  const auto eval =
      nn::evaluate(*global_, dataset_.test, cfg_.eval_samples);
  CurvePoint p;
  p.vtime = vtime;
  p.samples = stream_.samples_served();
  p.passes = static_cast<double>(p.samples) /
             static_cast<double>(stream_.dataset_size());
  p.megabatch = megabatch;
  p.top1 = eval.top1;
  p.top5 = eval.top5;
  p.test_loss = eval.loss;
  p.train_loss = train_loss;
  p.alive_gpus = num_alive();
  result.curve.push_back(p);
}

std::size_t MultiGpuRuntime::max_feasible_batch(std::size_t g,
                                                double at) const {
  const double avg_nnz = dataset_.train.features.avg_row_nnz();
  const std::size_t per_sample = global_->step_memory_bytes(1, avg_nnz);
  return gpus_[g]->max_batch_for(per_sample, at);
}

}  // namespace hetero::core
