#include "core/metrics.h"

#include <algorithm>

namespace hetero::core {

namespace {

// Interpolated first crossing of `target` along (x(point), top1).
template <typename XFn>
std::optional<double> first_crossing(const std::vector<CurvePoint>& curve,
                                     double target, XFn x_of) {
  double prev_x = 0.0, prev_y = 0.0;
  bool have_prev = false;
  for (const auto& p : curve) {
    const double x = x_of(p);
    if (p.top1 >= target) {
      if (!have_prev || prev_y >= target) return x;
      const double frac = (target - prev_y) / (p.top1 - prev_y);
      return prev_x + frac * (x - prev_x);
    }
    prev_x = x;
    prev_y = p.top1;
    have_prev = true;
  }
  return std::nullopt;
}

}  // namespace

std::optional<double> TrainResult::time_to_accuracy(double target) const {
  return first_crossing(curve, target,
                        [](const CurvePoint& p) { return p.vtime; });
}

std::optional<double> TrainResult::passes_to_accuracy(double target) const {
  return first_crossing(curve, target,
                        [](const CurvePoint& p) { return p.passes; });
}

double TrainResult::best_top1() const {
  double best = 0.0;
  for (const auto& p : curve) best = std::max(best, p.top1);
  return best;
}

double TrainResult::final_top1() const {
  return curve.empty() ? 0.0 : curve.back().top1;
}

double TrainResult::mean_utilization() const {
  if (gpus.empty() || total_vtime <= 0.0) return 0.0;
  double sum = 0.0;
  for (const auto& g : gpus) sum += g.busy_seconds / total_vtime;
  return sum / static_cast<double>(gpus.size());
}

double TrainResult::min_utilization() const {
  if (gpus.empty() || total_vtime <= 0.0) return 0.0;
  double lo = 1.0;
  for (const auto& g : gpus) lo = std::min(lo, g.busy_seconds / total_vtime);
  return lo;
}

}  // namespace hetero::core
