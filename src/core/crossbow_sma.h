// CROSSBOW-style synchronous model averaging (SMA) baseline.
//
// Following Koliousis et al. (PVLDB 2019), each learner keeps its own
// replica; every round it applies its local gradient plus an elastic
// correction toward the central average model z, and z absorbs the average
// of the replica deviations:
//
//   w_i <- w_i - lr * g_i + eta * (z - w_i)
//   z   <- z + (eta / n) * sum_i (w_i - z)        (pre-update deviations)
//
// Synchronization happens every round (synchronous). The paper reimplements
// CROSSBOW inside HeteroGPU because the original lacks sparse support; this
// class plays that role here. The paper observes its global-model update is
// sensitive and can leave local replicas divergent (poor accuracy on
// Amazon-670k, instability on Delicious-200k).
#pragma once

#include <memory>
#include <vector>

#include "core/trainer.h"

namespace hetero::core {

class CrossbowTrainer final : public Trainer {
 public:
  CrossbowTrainer(const data::XmlDataset& dataset, const TrainerConfig& cfg,
                  std::vector<sim::DeviceSpec> devices);

  std::string method_name() const override { return "crossbow-sma"; }

 protected:
  void run_megabatch(TrainResult& result) override;

 private:
  // Central average model z, kept as a model so the SMA update runs
  // segment-wise in place against the replicas' segment_views() — no
  // to_flat()/from_flat() staging copies per round.
  std::unique_ptr<nn::Model> central_;
  std::vector<double> dev_sum_;  // per-parameter deviation accumulator
};

}  // namespace hetero::core
