#include "core/sync_sgd.h"

#include <algorithm>
#include <memory>
#include <vector>

namespace hetero::core {

void SyncSgdTrainer::run_megabatch(TrainResult& result) {
  const std::size_t n = runtime_.num_gpus();
  const std::size_t b = cfg_.batch_max;
  const double lr = cfg_.learning_rate * lr_schedule_factor();
  // A mega-batch is only an evaluation boundary for this method; the model
  // synchronizes every round. Rounds per mega-batch keep the processed
  // sample count identical across all trainers.
  const std::size_t rounds =
      std::max<std::size_t>(1, cfg_.batches_per_megabatch / n);

  auto& model = runtime_.global_model();

  for (std::size_t round = 0; round < rounds; ++round) {
    // Barrier semantics: a round starts when every GPU has the new model.
    double round_start = 0.0;
    for (std::size_t g = 0; g < n; ++g) {
      round_start = std::max(round_start, runtime_.gpu_free_at(g));
    }

    // Each GPU computes a partial gradient on its own batch.
    std::vector<MultiGpuRuntime::Batch> batches;
    batches.reserve(n);
    double grads_done = 0.0;
    for (std::size_t g = 0; g < n; ++g) {
      batches.push_back(runtime_.next_batch(b));
      grads_done = std::max(
          grads_done, runtime_.charge_step(g, batches.back().x, round_start));
      result.gpus[g].total_samples += b;
    }

    // Gradient all-reduce (model-sized buffer), then every replica applies
    // the aggregate — replicas stay identical, so the math runs once on the
    // canonical model. Gradients must all be taken at the same model point:
    // compute all first, then apply each scaled by 1/n (equivalent to
    // applying the average).
    const auto ar = runtime_.reducer().cost(n, runtime_.virtual_model_bytes());
    const double finish = grads_done + ar.seconds;
    for (std::size_t g = 0; g < n; ++g) {
      runtime_.gpu(g).wait_all_until(finish);
    }
    result.comm_seconds += ar.seconds;

    runtime_.dispatch_math(0, [this, batches = std::move(batches), &model, lr,
                               n] {
      auto& ws = runtime_.workspace(0);
      std::vector<std::unique_ptr<nn::ModelWorkspace>> grads;
      grads.reserve(n);
      for (std::size_t g = 0; g < n; ++g) {
        // Workspace 0 is reused for activations; gradients are swapped out
        // so later batches do not overwrite earlier ones.
        const auto stats =
            model.compute_gradients(batches[g].x, batches[g].y, ws);
        runtime_.record_loss(0, stats.loss);
        grads.push_back(model.make_workspace());
        ws.swap_gradients(*grads.back());
      }
      const float scaled_lr = static_cast<float>(lr / static_cast<double>(n));
      for (std::size_t g = 0; g < n; ++g) {
        model.apply_gradients(*grads[g], scaled_lr);
      }
    });
    runtime_.math_barrier();
  }

  for (std::size_t g = 0; g < n; ++g) {
    result.gpus[g].batch_size.push_back(b);
    result.gpus[g].updates.push_back(rounds);
  }
  result.merges += 1;
}

}  // namespace hetero::core
