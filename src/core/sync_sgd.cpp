#include "core/sync_sgd.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

namespace hetero::core {

void SyncSgdTrainer::run_megabatch(TrainResult& result) {
  const std::size_t n = runtime_.num_gpus();
  const std::size_t b = cfg_.batch_max;
  const double lr = cfg_.learning_rate * lr_schedule_factor();
  // A mega-batch is only an evaluation boundary for this method; the model
  // synchronizes every round. Rounds per mega-batch keep the processed
  // sample count identical across all trainers.
  const std::size_t rounds =
      std::max<std::size_t>(1, cfg_.batches_per_megabatch / n);

  auto& model = runtime_.global_model();
  std::vector<std::size_t> participated(n, 0);

  for (std::size_t round = 0; round < rounds; ++round) {
    // Round membership: devices that can still accept work (not stalled
    // past the horizon, not crashed). Synchronous data parallelism degrades
    // to the surviving workers, aggregating 1/|members| of the gradient
    // from each.
    std::vector<std::size_t> members;
    members.reserve(n);
    for (std::size_t g = 0; g < n; ++g) {
      if (runtime_.schedulable(g)) members.push_back(g);
    }
    if (members.empty()) {
      throw std::runtime_error("sync-sgd: no alive schedulable device");
    }

    // Barrier semantics: a round starts when every member has the new model.
    double round_start = 0.0;
    for (std::size_t g : members) {
      round_start = std::max(round_start, runtime_.gpu_free_at(g));
    }

    // Each member computes a partial gradient on its own batch; a device
    // crashing at dispatch loses its batch and drops out of the aggregate.
    std::vector<MultiGpuRuntime::Batch> batches;
    std::vector<std::size_t> contributed;
    batches.reserve(members.size());
    contributed.reserve(members.size());
    double grads_done = 0.0;
    for (std::size_t g : members) {
      auto batch = runtime_.next_batch(b);
      double done;
      try {
        done = runtime_.charge_step(g, batch.x, round_start);
      } catch (const sim::DeviceUnavailable&) {
        continue;
      }
      grads_done = std::max(grads_done, done);
      result.gpus[g].total_samples += b;
      participated[g] += 1;
      contributed.push_back(g);
      batches.push_back(std::move(batch));
    }
    if (contributed.empty()) continue;

    // Gradient all-reduce (model-sized buffer) over the contributing
    // subset, then every replica applies the aggregate — replicas stay
    // identical, so the math runs once on the canonical model. Gradients
    // must all be taken at the same model point: compute all first, then
    // apply each scaled by 1/|contributed| (equivalent to the average).
    // Under --merge-precision the exchange is billed at the compressed
    // wire size (cost-only modeling: the aggregate math stays fp32).
    const auto ar = runtime_.reducer().cost(contributed.size(),
                                            runtime_.virtual_model_wire());
    const double finish = grads_done + ar.seconds;
    for (std::size_t g : contributed) {
      runtime_.gpu(g).wait_all_until(finish);
    }
    result.comm_seconds += ar.seconds;

    const std::size_t k = contributed.size();
    runtime_.dispatch_math(0, [this, batches = std::move(batches), &model, lr,
                               k] {
      auto& ws = runtime_.workspace(0);
      std::vector<std::unique_ptr<nn::ModelWorkspace>> grads;
      grads.reserve(k);
      for (std::size_t i = 0; i < k; ++i) {
        // Workspace 0 is reused for activations; gradients are swapped out
        // so later batches do not overwrite earlier ones.
        const auto stats =
            model.compute_gradients(batches[i].x, batches[i].y, ws);
        runtime_.record_loss(0, stats.loss);
        grads.push_back(model.make_workspace());
        ws.swap_gradients(*grads.back());
      }
      const float scaled_lr = static_cast<float>(lr / static_cast<double>(k));
      for (std::size_t i = 0; i < k; ++i) {
        runtime_.global_optimizer().apply(model, *grads[i], scaled_lr, 0.0f);
      }
    });
    runtime_.math_barrier();
  }

  // Membership bookkeeping at the evaluation boundary.
  double all_free = 0.0;
  for (std::size_t g = 0; g < n; ++g) {
    all_free = std::max(all_free, runtime_.gpu(g).device_free_at());
  }
  runtime_.apply_crashes_until(all_free);
  runtime_.apply_joins_until(all_free);

  for (std::size_t g = 0; g < n; ++g) {
    result.gpus[g].batch_size.push_back(b);
    result.gpus[g].updates.push_back(participated[g]);
  }
  result.merges += 1;
}

}  // namespace hetero::core
