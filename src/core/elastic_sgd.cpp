#include "core/elastic_sgd.h"

#include <algorithm>
#include <stdexcept>

#include "core/merging.h"

namespace hetero::core {

void ElasticSgdTrainer::run_megabatch(TrainResult& result) {
  const std::size_t n = runtime_.num_gpus();
  const std::size_t b = cfg_.batch_max;
  const double lr = cfg_.learning_rate * lr_schedule_factor();

  // Static assignment: batches_per_megabatch batches handed out round-robin
  // up-front, each GPU processing its share back-to-back. Non-schedulable
  // devices (stalled past the horizon or crashed) forfeit their slot to the
  // earliest-free survivor.
  std::vector<std::size_t> updates(n, 0);
  for (std::size_t i = 0; i < cfg_.batches_per_megabatch; ++i) {
    std::size_t g = i % n;
    if (!runtime_.schedulable(g)) g = runtime_.next_free_gpu();
    auto batch = runtime_.next_batch(b);
    try {
      runtime_.run_update_step(g, std::move(batch), lr,
                               runtime_.gpu_free_at(g));
    } catch (const sim::DeviceUnavailable&) {
      continue;  // crashed mid-mega-batch: batch lost, membership below
    }
    updates[g] += 1;
    result.gpus[g].total_samples += b;
  }

  double all_free = 0.0;
  for (std::size_t g = 0; g < n; ++g) {
    all_free = std::max(all_free, runtime_.gpu(g).device_free_at());
  }
  runtime_.math_barrier();
  runtime_.apply_crashes_until(all_free);

  double sync = 0.0;
  std::size_t num_alive = 0;
  for (std::size_t g = 0; g < n; ++g) {
    if (!runtime_.replica_alive(g)) continue;
    ++num_alive;
    sync = std::max(sync, runtime_.gpu(g).device_free_at());
  }
  if (num_alive == 0) {
    throw std::runtime_error("elastic-sgd: all replicas crashed");
  }

  // Plain elastic averaging: equal weights over the alive set (all batch
  // sizes identical), no perturbation; momentum follows the shared rule.
  std::vector<double> weights(n, 0.0);
  for (std::size_t g = 0; g < n; ++g) {
    if (runtime_.replica_alive(g)) {
      weights[g] = 1.0 / static_cast<double>(num_alive);
    }
  }
  const auto timing = runtime_.merge_and_update(weights, sync);

  result.merges += 1;
  result.comm_seconds +=
      timing.allreduce_seconds + timing.host_roundtrip_seconds;
  for (std::size_t g = 0; g < n; ++g) {
    result.gpus[g].batch_size.push_back(b);
    result.gpus[g].updates.push_back(updates[g]);
  }
  runtime_.apply_joins_until(timing.finish);
}

}  // namespace hetero::core
