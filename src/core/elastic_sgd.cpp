#include "core/elastic_sgd.h"

#include <algorithm>

#include "core/merging.h"

namespace hetero::core {

void ElasticSgdTrainer::run_megabatch(TrainResult& result) {
  const std::size_t n = runtime_.num_gpus();
  const std::size_t b = cfg_.batch_max;
  const double lr = cfg_.learning_rate * lr_schedule_factor();

  // Static assignment: batches_per_megabatch batches handed out round-robin
  // up-front, each GPU processing its share back-to-back.
  std::vector<std::size_t> updates(n, 0);
  for (std::size_t i = 0; i < cfg_.batches_per_megabatch; ++i) {
    const std::size_t g = i % n;
    auto batch = runtime_.next_batch(b);
    runtime_.run_update_step(g, std::move(batch), lr,
                             runtime_.gpu_free_at(g));
    updates[g] += 1;
    result.gpus[g].total_samples += b;
  }

  double sync = 0.0;
  for (std::size_t g = 0; g < n; ++g) {
    sync = std::max(sync, runtime_.gpu(g).device_free_at());
  }
  runtime_.math_barrier();

  // Plain elastic averaging: equal weights (all batch sizes identical),
  // no perturbation; momentum follows the shared update rule.
  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  const auto timing = runtime_.merge_and_update(weights, sync);

  result.merges += 1;
  result.comm_seconds +=
      timing.allreduce_seconds + timing.host_roundtrip_seconds;
  for (std::size_t g = 0; g < n; ++g) {
    result.gpus[g].batch_size.push_back(b);
    result.gpus[g].updates.push_back(updates[g]);
  }
}

}  // namespace hetero::core
