#include "core/crossbow_sma.h"

#include <algorithm>
#include <vector>

namespace hetero::core {

CrossbowTrainer::CrossbowTrainer(const data::XmlDataset& dataset,
                                 const TrainerConfig& cfg,
                                 std::vector<sim::DeviceSpec> devices)
    : Trainer(dataset, cfg, std::move(devices)) {
  central_ = runtime_.global_model().clone();
  dev_sum_.resize(central_->num_parameters(), 0.0);
}

void CrossbowTrainer::run_megabatch(TrainResult& result) {
  const std::size_t n = runtime_.num_gpus();
  const std::size_t b = cfg_.batch_max;
  const float lr =
      static_cast<float>(cfg_.learning_rate * lr_schedule_factor());
  const float eta = static_cast<float>(cfg_.crossbow_eta);
  const std::size_t rounds =
      std::max<std::size_t>(1, cfg_.batches_per_megabatch / n);

  for (std::size_t round = 0; round < rounds; ++round) {
    double round_start = 0.0;
    for (std::size_t g = 0; g < n; ++g) {
      round_start = std::max(round_start, runtime_.gpu_free_at(g));
    }

    // Local gradient computation on each learner's replica.
    double grads_done = 0.0;
    for (std::size_t g = 0; g < n; ++g) {
      auto batch = runtime_.next_batch(b);
      grads_done = std::max(
          grads_done, runtime_.run_gradient_step(g, std::move(batch),
                                                 round_start));
      result.gpus[g].total_samples += b;
    }

    // Synchronous exchange of replica deviations (model-sized all-reduce;
    // billed at the compressed wire size under --merge-precision, the
    // deviation math itself stays fp32).
    const auto ar =
        runtime_.reducer().cost(n, runtime_.virtual_model_wire());
    const double finish = grads_done + ar.seconds;
    for (std::size_t g = 0; g < n; ++g) {
      runtime_.gpu(g).wait_all_until(finish);
    }
    result.comm_seconds += ar.seconds;
    runtime_.math_barrier();

    // SMA update, segment-wise in place over the replicas' parameter
    // tensors (deviations are measured before the learners move). The only
    // O(params) state is the reusable double accumulator — no flat model
    // copies in or out.
    const auto central_segs = central_->segment_views();
    std::fill(dev_sum_.begin(), dev_sum_.end(), 0.0);
    for (std::size_t g = 0; g < n; ++g) {
      auto& replica = runtime_.replica(g);
      const auto replica_segs = replica.segment_views();
      std::size_t off = 0;
      for (std::size_t s = 0; s < central_segs.size(); ++s) {
        float* w = replica_segs[s].data();
        const float* z = central_segs[s].data();
        const std::size_t len = central_segs[s].size();
        for (std::size_t j = 0; j < len; ++j) {
          dev_sum_[off + j] += static_cast<double>(w[j]) - z[j];
          // w_i <- w_i + eta * (z - w_i), then the local gradient.
          w[j] += eta * (z[j] - w[j]);
        }
        off += len;
      }
      runtime_.optimizer(g).apply(replica, runtime_.workspace(g), lr, 0.0f);
    }
    const double scale =
        static_cast<double>(eta) / static_cast<double>(n);
    std::size_t off = 0;
    for (const auto seg : central_segs) {
      float* z = seg.data();
      for (std::size_t j = 0; j < seg.size(); ++j) {
        z[j] = static_cast<float>(z[j] + scale * dev_sum_[off + j]);
      }
      off += seg.size();
    }
  }

  // The central average model is the model whose accuracy is reported.
  runtime_.global_model().copy_from(*central_);
  result.merges += 1;
  for (std::size_t g = 0; g < n; ++g) {
    result.gpus[g].batch_size.push_back(b);
    result.gpus[g].updates.push_back(rounds);
  }
}

}  // namespace hetero::core
