// Compressed sparse row (CSR) matrix, the storage format for XML training
// data: both the feature matrix (samples x features) and the label matrix
// (samples x classes) are CSR. Values are float; labels typically store 1.0.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

namespace hetero::sparse {

/// One (column, value) entry of a sparse row.
struct Entry {
  std::uint32_t col;
  float value;
};

/// Immutable-shape CSR matrix. Build with CsrBuilder or from raw arrays.
class CsrMatrix {
 public:
  CsrMatrix() : row_ptr_{0} {}

  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<std::size_t> row_ptr, std::vector<std::uint32_t> col_idx,
            std::vector<float> values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return col_idx_.size(); }

  /// Number of non-zeros in row r.
  std::size_t row_nnz(std::size_t r) const {
    return row_ptr_[r + 1] - row_ptr_[r];
  }

  /// Number of non-zeros in the half-open row range [begin, end).
  std::size_t range_nnz(std::size_t begin, std::size_t end) const {
    return row_ptr_[end] - row_ptr_[begin];
  }

  std::span<const std::uint32_t> row_cols(std::size_t r) const {
    return {col_idx_.data() + row_ptr_[r], row_nnz(r)};
  }
  std::span<const float> row_values(std::size_t r) const {
    return {values_.data() + row_ptr_[r], row_nnz(r)};
  }

  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::uint32_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  /// Extracts rows [begin, end) as a new CSR matrix (column space unchanged).
  CsrMatrix slice_rows(std::size_t begin, std::size_t end) const;

  /// Gathers an arbitrary row subset (e.g. a shuffled batch).
  CsrMatrix gather_rows(std::span<const std::size_t> row_ids) const;

  /// True when row r contains column c (rows must be column-sorted).
  bool row_contains(std::size_t r, std::uint32_t c) const;

  /// Average non-zeros per row.
  double avg_row_nnz() const;

  /// Checks structural invariants (monotone row_ptr, in-range columns,
  /// sorted columns within each row). Used by tests and the libSVM reader.
  bool validate() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;      // length rows+1
  std::vector<std::uint32_t> col_idx_;    // length nnz
  std::vector<float> values_;             // length nnz
};

/// Row-by-row builder; duplicate columns within a row are summed.
class CsrBuilder {
 public:
  explicit CsrBuilder(std::size_t cols) : cols_(cols) {}

  /// Appends a row from (col, value) entries; entries are sorted and
  /// deduplicated (values summed). Zero-valued entries are kept (they still
  /// occupy a slot, matching typical libSVM data).
  void add_row(std::vector<Entry> entries);

  /// Same, from a borrowed span. Copies into an internal scratch buffer
  /// that is reused across rows, so callers that rebuild small batches at
  /// high rate (the serving wave loop) do not allocate per row.
  void add_row(std::span<const Entry> entries);

  /// Braced-list convenience (`add_row({{0, 1.0f}, {3, 2.0f}})`); without
  /// this overload such calls are ambiguous between the two above.
  void add_row(std::initializer_list<Entry> entries) {
    add_row(std::span<const Entry>(entries.begin(), entries.size()));
  }

  /// Appends a row with all values = 1 (label rows).
  void add_indicator_row(std::vector<std::uint32_t> cols);

  std::size_t rows() const { return row_ptr_.size() - 1; }

  /// Finalizes into a CsrMatrix; the builder is left empty.
  CsrMatrix build();

 private:
  void append_row(std::vector<Entry>& entries);

  std::size_t cols_;
  std::vector<std::size_t> row_ptr_{0};
  std::vector<std::uint32_t> col_idx_;
  std::vector<float> values_;
  std::vector<Entry> scratch_;  // reused by the span overload
};

}  // namespace hetero::sparse
