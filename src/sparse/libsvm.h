// Reader/writer for the multi-label libSVM format used by the Extreme
// Classification Repository (the paper stores training data in sparse
// libSVM format, Section V-A):
//
//   label1,label2,... idx1:val1 idx2:val2 ...
//
// The first line may optionally be a header "num_samples num_features
// num_labels" (XML Repository convention); it is auto-detected.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csr.h"

namespace hetero::sparse {

/// A multi-label sparse dataset: features and labels share row order.
struct LabeledDataset {
  CsrMatrix features;  // samples x num_features
  CsrMatrix labels;    // samples x num_classes (indicator values)

  std::size_t num_samples() const { return features.rows(); }
};

/// Parses a libSVM stream. `num_features` / `num_classes` of 0 means
/// "infer from data (max index + 1)", unless a header line provides them.
/// Feature indices in the file may be 0- or 1-based; `one_based_indices`
/// selects the convention (XML Repository files are 0-based).
///
/// This is an untrusted-input path: malformed lines — non-numeric or
/// out-of-range indices, trailing garbage in labels or values, non-finite
/// values, indices beyond the declared dimensions — throw hetero::ParseError
/// carrying the 1-based line number. Allocation is bounded by input size.
LabeledDataset read_libsvm(std::istream& in, std::size_t num_features = 0,
                           std::size_t num_classes = 0,
                           bool one_based_indices = false);

/// Convenience file-path overload. Throws std::runtime_error on I/O failure.
LabeledDataset read_libsvm_file(const std::string& path,
                                std::size_t num_features = 0,
                                std::size_t num_classes = 0,
                                bool one_based_indices = false);

/// Writes a dataset in libSVM format with a header line.
void write_libsvm(std::ostream& out, const LabeledDataset& dataset);
void write_libsvm_file(const std::string& path, const LabeledDataset& dataset);

}  // namespace hetero::sparse
