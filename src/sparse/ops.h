// Sparse kernels: the two products that dominate XML MLP training.
//
//   forward :  Y = X · W      (X: B x F sparse, W: F x H dense, Y: B x H)
//   backward:  G = Xᵀ · D     (X: B x F sparse, D: B x H dense, G: F x H)
//
// The backward product is implemented as a scatter over the non-zeros of X,
// which is exactly what makes per-batch cost proportional to nnz — the
// sparse-data source of GPU heterogeneity the paper exploits (Section I).
#pragma once

#include <vector>

#include "sparse/csr.h"
#include "tensor/matrix.h"
#include "util/kernel_context.h"

namespace hetero::sparse {

/// Y = X * W. Y is resized to (X.rows, W.cols).
/// The context variant partitions the rows of X into nnz-balanced ranges
/// across the pool (each output row is written by exactly one worker, so the
/// result is bit-identical to serial) with a serial fallback below the
/// context's work grain.
void spmm(const CsrMatrix& x, const tensor::Matrix& w, tensor::Matrix& y);
void spmm(const CsrMatrix& x, const tensor::Matrix& w, tensor::Matrix& y,
          const kernels::Context& ctx);

/// G += Xᵀ * D, where G has shape (X.cols, D.cols). G must be pre-sized;
/// it is NOT zeroed (gradient accumulation). Only rows of G touched by
/// non-zeros of X are updated — the sparse-gradient property.
/// The context variant partitions the OUTPUT (feature) rows: each worker
/// scans the whole batch but only accumulates the non-zeros whose column
/// falls in its range, keeping the scatter race-free and the per-row
/// accumulation order identical to serial.
void spmm_t_accumulate(const CsrMatrix& x, const tensor::Matrix& d,
                       tensor::Matrix& g);
void spmm_t_accumulate(const CsrMatrix& x, const tensor::Matrix& d,
                       tensor::Matrix& g, const kernels::Context& ctx);

/// Sorted, deduplicated column ids with at least one non-zero in `x` — the
/// set of W1 rows a batch touches. The out-parameter overload reuses the
/// caller's buffer (no per-batch allocation on the hot path).
std::vector<std::uint32_t> touched_columns(const CsrMatrix& x);
void touched_columns(const CsrMatrix& x, std::vector<std::uint32_t>& out);

/// Flop count of spmm (2 * nnz * w_cols). Used by the simulator cost model.
std::size_t spmm_flops(const CsrMatrix& x, std::size_t w_cols);

/// Bytes moved by spmm under a simple streaming model: reads the CSR arrays
/// and the rows of W selected by non-zeros, writes Y.
std::size_t spmm_bytes(const CsrMatrix& x, std::size_t w_cols);

/// Dense row count of the gradient touched by X (number of distinct columns
/// with at least one non-zero). O(nnz log nnz).
std::size_t distinct_columns(const CsrMatrix& x);

/// Explicit transpose: returns Xᵀ as a new CSR matrix (classic two-pass
/// counting transpose, O(nnz + rows + cols)). Used for feature-major
/// analyses (column popularity, co-occurrence) and as the CSC view of X.
CsrMatrix transpose(const CsrMatrix& x);

/// Per-column non-zero counts (feature popularity). Length = x.cols().
std::vector<std::size_t> column_nnz(const CsrMatrix& x);

/// Frobenius norm of the matrix values.
double frobenius_norm(const CsrMatrix& x);

}  // namespace hetero::sparse
