#include "sparse/ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "tensor/vec/vec.h"
#include "util/partition.h"

namespace hetero::sparse {

void spmm(const CsrMatrix& x, const tensor::Matrix& w, tensor::Matrix& y) {
  spmm(x, w, y, kernels::Context::serial());
}

void spmm(const CsrMatrix& x, const tensor::Matrix& w, tensor::Matrix& y,
          const kernels::Context& ctx) {
  assert(x.cols() == w.rows());
  const std::size_t h = w.cols();
  y.resize(x.rows(), h, 0.0f);
  const std::size_t work = x.nnz() * h;
  const auto& vk = vec::kernels();

  const auto run_rows = [&](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      float* yr = y.data() + r * h;
      const auto cols = x.row_cols(r);
      const auto vals = x.row_values(r);
      for (std::size_t i = 0; i < cols.size(); ++i) {
        vk.axpy(vals[i],
                w.data() + static_cast<std::size_t>(cols[i]) * h, yr, h);
      }
    }
  };

  const std::size_t workers =
      ctx.should_parallelize(work) ? ctx.workers_for(x.rows()) : 1;
  if (workers <= 1) {
    run_rows(0, x.rows());
    return;
  }
  // nnz-balanced row ranges: split the row_ptr prefix sums evenly so skewed
  // batches (a few heavy rows) do not serialize on one worker.
  const auto ranges = kernels::nnz_balanced_ranges(x.row_ptr(), workers);
  std::vector<std::future<void>> futures;
  futures.reserve(ranges.size());
  for (const auto& [r0, r1] : ranges) {
    futures.push_back(ctx.pool->submit([&run_rows, r0 = r0, r1 = r1] {
      run_rows(r0, r1);
    }));
  }
  for (auto& f : futures) f.get();
}

void spmm_t_accumulate(const CsrMatrix& x, const tensor::Matrix& d,
                       tensor::Matrix& g) {
  spmm_t_accumulate(x, d, g, kernels::Context::serial());
}

void spmm_t_accumulate(const CsrMatrix& x, const tensor::Matrix& d,
                       tensor::Matrix& g, const kernels::Context& ctx) {
  assert(x.rows() == d.rows());
  assert(g.rows() == x.cols());
  assert(g.cols() == d.cols());
  const std::size_t h = d.cols();
  const auto& vk = vec::kernels();
  // Partition by output (feature) row: worker ranges [f0, f1) over g's rows.
  // Every worker scans the full batch but touches only its own g rows, so
  // the scatter needs no atomics and accumulates in batch order per row.
  parallel_for_ranges(
      ctx, g.rows(), x.nnz() * h, [&](std::size_t f0, std::size_t f1) {
        for (std::size_t r = 0; r < x.rows(); ++r) {
          const float* dr = d.data() + r * h;
          const auto cols = x.row_cols(r);
          const auto vals = x.row_values(r);
          for (std::size_t i = 0; i < cols.size(); ++i) {
            const auto f = static_cast<std::size_t>(cols[i]);
            if (f < f0 || f >= f1) continue;
            vk.axpy(vals[i], dr, g.data() + f * h, h);
          }
        }
      });
}

std::vector<std::uint32_t> touched_columns(const CsrMatrix& x) {
  std::vector<std::uint32_t> cols;
  touched_columns(x, cols);
  return cols;
}

void touched_columns(const CsrMatrix& x, std::vector<std::uint32_t>& out) {
  out.assign(x.col_idx().begin(), x.col_idx().end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

std::size_t spmm_flops(const CsrMatrix& x, std::size_t w_cols) {
  return 2 * x.nnz() * w_cols;
}

std::size_t spmm_bytes(const CsrMatrix& x, std::size_t w_cols) {
  // CSR arrays (cols + values) + one W row per non-zero + output.
  const std::size_t csr = x.nnz() * (sizeof(std::uint32_t) + sizeof(float));
  const std::size_t wrows = x.nnz() * w_cols * sizeof(float);
  const std::size_t out = x.rows() * w_cols * sizeof(float);
  return csr + wrows + out;
}

std::size_t distinct_columns(const CsrMatrix& x) {
  return touched_columns(x).size();
}

CsrMatrix transpose(const CsrMatrix& x) {
  const std::size_t rows = x.cols();  // transposed shape
  const std::size_t cols = x.rows();
  std::vector<std::size_t> row_ptr(rows + 1, 0);
  // Pass 1: count entries per output row (= input column).
  for (auto c : x.col_idx()) ++row_ptr[c + 1];
  for (std::size_t r = 0; r < rows; ++r) row_ptr[r + 1] += row_ptr[r];

  std::vector<std::uint32_t> col_idx(x.nnz());
  std::vector<float> values(x.nnz());
  std::vector<std::size_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  // Pass 2: scatter. Scanning input rows in order gives sorted columns in
  // every output row.
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto in_cols = x.row_cols(r);
    const auto in_vals = x.row_values(r);
    for (std::size_t i = 0; i < in_cols.size(); ++i) {
      const std::size_t pos = cursor[in_cols[i]]++;
      col_idx[pos] = static_cast<std::uint32_t>(r);
      values[pos] = in_vals[i];
    }
  }
  return CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

std::vector<std::size_t> column_nnz(const CsrMatrix& x) {
  std::vector<std::size_t> counts(x.cols(), 0);
  for (auto c : x.col_idx()) ++counts[c];
  return counts;
}

double frobenius_norm(const CsrMatrix& x) {
  double ss = 0.0;
  for (float v : x.values()) ss += static_cast<double>(v) * v;
  return std::sqrt(ss);
}

}  // namespace hetero::sparse
