// Touched-row gradient for the sparse input layer.
//
// A batch with nnz non-zeros touches at most nnz distinct rows of the
// F x H layer-1 weight matrix, and for XML datasets (F up to millions,
// density ≤ 0.1%) that is a vanishingly small fraction of F. Storing the
// layer-1 gradient densely therefore wastes both memory and — worse — an
// O(F x H) zero-fill every step just to reuse the buffer. SparseGradient
// stores only the touched rows: a sorted row-id list plus a packed
// (touched x cols) value block, with an O(1) row -> slot map so the
// backward scatter stays a direct lookup. The map is allocated once per
// logical row space and re-keyed per batch in O(touched) by clearing only
// the previously touched entries, so no per-step cost scales with F.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "sparse/csr.h"
#include "tensor/matrix.h"
#include "util/kernel_context.h"

namespace hetero::sparse {

/// Accumulating set of touched row ids over a fixed logical row space.
///
/// The delta-aware merge path (TrainerConfig::sparse_merge) needs the union
/// of every W1 row a replica touched since the last broadcast: each SGD step
/// adds its SparseGradient row keys here in O(rows added), and the scheduler
/// unions the per-replica sets at the merge. Membership is an epoch-stamped
/// O(1) lookup — clearing between mega-batches just bumps the epoch, so no
/// per-merge cost scales with the logical row count except the one-time
/// stamp allocation.
class RowSet {
 public:
  /// Re-targets the set to [0, logical_rows) and clears it.
  void reset(std::size_t logical_rows);

  /// Empties the set, keeping the row space. O(1) amortized.
  void clear();

  /// Adds the given row ids (duplicates ignored). O(rows.size()).
  void add(std::span<const std::uint32_t> rows);
  void add(const RowSet& other) { add(other.rows()); }

  bool contains(std::uint32_t row) const {
    return row < stamp_.size() && stamp_[row] == epoch_;
  }

  std::size_t size() const { return rows_.size(); }
  std::size_t logical_rows() const { return stamp_.size(); }

  /// Distinct row ids in insertion order.
  std::span<const std::uint32_t> rows() const { return rows_; }

  /// Copies the distinct ids into `out`, sorted ascending (the merge kernels
  /// walk rows in address order for locality).
  void sorted_rows(std::vector<std::uint32_t>& out) const;

 private:
  std::uint32_t epoch_ = 1;
  std::vector<std::uint32_t> stamp_;  // per-row epoch of last insertion
  std::vector<std::uint32_t> rows_;   // distinct ids, insertion order
};

class SparseGradient {
 public:
  static constexpr std::uint32_t kNoSlot =
      std::numeric_limits<std::uint32_t>::max();

  SparseGradient() = default;

  /// Re-keys to the rows touched by `x` (its distinct non-zero columns) over
  /// a logical (x.cols() x cols) matrix and zeroes the packed values.
  /// Amortized O(batch nnz log nnz): no work proportional to x.cols() after
  /// the first call with a given row space.
  void reset(const CsrMatrix& x, std::size_t cols);

  /// Re-keys to an explicit sorted, deduplicated row set.
  void reset(std::size_t logical_rows, std::size_t cols,
             std::span<const std::uint32_t> touched_sorted);

  std::size_t logical_rows() const { return logical_rows_; }
  std::size_t cols() const { return cols_; }
  /// Number of touched rows (== packed row count).
  std::size_t num_rows() const { return rows_.size(); }

  /// Sorted logical ids of the touched rows.
  std::span<const std::uint32_t> rows() const { return rows_; }

  /// Packed values, num_rows() x cols() row-major.
  std::span<float> values() { return {values_.data(), values_.size()}; }
  std::span<const float> values() const {
    return {values_.data(), values_.size()};
  }

  /// Packed slot of a logical row, or kNoSlot if the row is untouched. O(1).
  std::uint32_t slot_of(std::uint32_t logical_row) const {
    return logical_row < slot_map_.size() ? slot_map_[logical_row] : kNoSlot;
  }

  /// Values of packed slot s (s < num_rows()).
  std::span<float> slot_values(std::size_t s) {
    return {values_.data() + s * cols_, cols_};
  }
  std::span<const float> slot_values(std::size_t s) const {
    return {values_.data() + s * cols_, cols_};
  }

  /// G += Xᵀ * D over the touched rows. `x` must have the sparsity pattern
  /// this gradient was reset with (same touched-column set). Parallel over
  /// packed-slot ranges: each worker scans the batch and accumulates only
  /// the non-zeros whose slot falls in its range, so the scatter is
  /// race-free and bit-identical to serial.
  void accumulate_spmm_t(const CsrMatrix& x, const tensor::Matrix& d,
                         const kernels::Context& ctx);

  /// w[row] = keep * w[row] - lr * g[row] for every touched row.
  /// `keep` is the decoupled weight-decay factor (1.0 = no decay).
  void apply_to(tensor::Matrix& w, float lr, float keep,
                const kernels::Context& ctx) const;

  /// alpha-scaled accumulation of another gradient with the SAME key
  /// (asserted): values += alpha * other.values. Used by gradient averaging.
  void add_scaled(const SparseGradient& other, float alpha);

  /// Scatters into a dense logical_rows x cols matrix (test/debug helper —
  /// this is exactly the dense buffer the hot path no longer materializes).
  void to_dense(tensor::Matrix& out) const;

 private:
  std::size_t logical_rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint32_t> rows_;      // sorted touched logical row ids
  std::vector<float> values_;            // packed num_rows x cols
  std::vector<std::uint32_t> slot_map_;  // logical row -> slot or kNoSlot
  std::vector<std::uint32_t> scratch_;   // touched-column buffer (reused)
};

}  // namespace hetero::sparse
