#include "sparse/libsvm.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace hetero::sparse {

namespace {

struct ParsedRow {
  std::vector<std::uint32_t> labels;
  std::vector<Entry> features;
};

// Parses "l1,l2 i1:v1 i2:v2". Lines without a ':' in the second token and
// exactly 2-3 integer tokens are treated as headers by the caller.
ParsedRow parse_row(const std::string& line, bool one_based) {
  ParsedRow row;
  std::istringstream ss(line);
  std::string token;
  bool first = true;
  while (ss >> token) {
    const auto colon = token.find(':');
    if (first && colon == std::string::npos) {
      // Comma-separated label list.
      std::size_t pos = 0;
      while (pos < token.size()) {
        auto comma = token.find(',', pos);
        if (comma == std::string::npos) comma = token.size();
        if (comma > pos) {
          row.labels.push_back(static_cast<std::uint32_t>(
              std::strtoul(token.substr(pos, comma - pos).c_str(), nullptr, 10)));
        }
        pos = comma + 1;
      }
      first = false;
      continue;
    }
    first = false;
    if (colon == std::string::npos) {
      throw std::runtime_error("libsvm: malformed token '" + token + "'");
    }
    auto idx = static_cast<std::uint32_t>(
        std::strtoul(token.substr(0, colon).c_str(), nullptr, 10));
    if (one_based) {
      if (idx == 0) throw std::runtime_error("libsvm: 0 index in 1-based file");
      idx -= 1;
    }
    const float value =
        std::strtof(token.substr(colon + 1).c_str(), nullptr);
    row.features.push_back({idx, value});
  }
  return row;
}

bool looks_like_header(const std::string& line) {
  std::istringstream ss(line);
  std::string tok;
  int count = 0;
  while (ss >> tok) {
    if (tok.find(':') != std::string::npos || tok.find(',') != std::string::npos)
      return false;
    for (char c : tok)
      if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    ++count;
  }
  return count == 3;
}

}  // namespace

LabeledDataset read_libsvm(std::istream& in, std::size_t num_features,
                           std::size_t num_classes, bool one_based_indices) {
  std::string line;
  std::vector<ParsedRow> rows;
  bool first_line = true;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (first_line && looks_like_header(line)) {
      std::istringstream ss(line);
      std::size_t ns = 0, nf = 0, nc = 0;
      ss >> ns >> nf >> nc;
      if (num_features == 0) num_features = nf;
      if (num_classes == 0) num_classes = nc;
      first_line = false;
      continue;
    }
    first_line = false;
    rows.push_back(parse_row(line, one_based_indices));
  }

  std::size_t max_feature = 0, max_label = 0;
  for (const auto& r : rows) {
    for (const auto& e : r.features)
      max_feature = std::max<std::size_t>(max_feature, e.col + 1);
    for (auto l : r.labels) max_label = std::max<std::size_t>(max_label, l + 1);
  }
  if (num_features == 0) num_features = max_feature;
  if (num_classes == 0) num_classes = max_label;
  if (max_feature > num_features || max_label > num_classes) {
    throw std::runtime_error("libsvm: index exceeds declared dimensions");
  }

  CsrBuilder features(num_features);
  CsrBuilder labels(num_classes);
  for (auto& r : rows) {
    features.add_row(std::move(r.features));
    labels.add_indicator_row(std::move(r.labels));
  }
  return {features.build(), labels.build()};
}

LabeledDataset read_libsvm_file(const std::string& path,
                                std::size_t num_features,
                                std::size_t num_classes,
                                bool one_based_indices) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("libsvm: cannot open " + path);
  return read_libsvm(in, num_features, num_classes, one_based_indices);
}

void write_libsvm(std::ostream& out, const LabeledDataset& dataset) {
  out << dataset.num_samples() << ' ' << dataset.features.cols() << ' '
      << dataset.labels.cols() << '\n';
  for (std::size_t r = 0; r < dataset.num_samples(); ++r) {
    const auto labels = dataset.labels.row_cols(r);
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i) out << ',';
      out << labels[i];
    }
    const auto cols = dataset.features.row_cols(r);
    const auto vals = dataset.features.row_values(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      out << ' ' << cols[i] << ':' << vals[i];
    }
    out << '\n';
  }
}

void write_libsvm_file(const std::string& path, const LabeledDataset& dataset) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("libsvm: cannot open " + path);
  write_libsvm(out, dataset);
}

}  // namespace hetero::sparse
