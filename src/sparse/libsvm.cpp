#include "sparse/libsvm.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.h"

namespace hetero::sparse {

namespace {

using hetero::ParseError;

struct ParsedRow {
  std::vector<std::uint32_t> labels;
  std::vector<Entry> features;
};

std::uint32_t parse_index(const std::string& text, std::size_t line_no) {
  return static_cast<std::uint32_t>(util::parse_u64_strict(
      text, "libsvm", line_no, std::numeric_limits<std::uint32_t>::max()));
}

// Parses "l1,l2 i1:v1 i2:v2". Lines without a ':' in the second token and
// exactly 2-3 integer tokens are treated as headers by the caller. Every
// numeric field is parsed strictly: "abc:1.0" (index silently 0 under
// strtoul), "2x" labels (trailing garbage), out-of-range indices, and
// non-finite values are all rejected with a ParseError naming the line.
ParsedRow parse_row(const std::string& line, std::size_t line_no,
                    bool one_based, std::size_t declared_features) {
  ParsedRow row;
  std::istringstream ss(line);
  std::string token;
  bool first = true;
  while (ss >> token) {
    const auto colon = token.find(':');
    if (first && colon == std::string::npos) {
      // Comma-separated label list.
      std::size_t pos = 0;
      while (pos < token.size()) {
        auto comma = token.find(',', pos);
        if (comma == std::string::npos) comma = token.size();
        if (comma > pos) {
          row.labels.push_back(
              parse_index(token.substr(pos, comma - pos), line_no));
        }
        pos = comma + 1;
      }
      first = false;
      continue;
    }
    first = false;
    if (colon == std::string::npos) {
      throw ParseError("libsvm", "malformed token '" + token + "'", line_no);
    }
    auto idx = parse_index(token.substr(0, colon), line_no);
    if (one_based) {
      if (idx == 0) {
        throw ParseError("libsvm", "0 index in 1-based file", line_no);
      }
      idx -= 1;
    }
    if (declared_features != 0 && idx >= declared_features) {
      throw ParseError("libsvm",
                       "feature index " + std::to_string(idx) +
                           " exceeds declared num_features " +
                           std::to_string(declared_features),
                       line_no);
    }
    const float value =
        util::parse_f32_strict(token.substr(colon + 1), "libsvm", line_no);
    row.features.push_back({idx, value});
  }
  return row;
}

bool looks_like_header(const std::string& line) {
  std::istringstream ss(line);
  std::string tok;
  int count = 0;
  while (ss >> tok) {
    if (tok.find(':') != std::string::npos || tok.find(',') != std::string::npos)
      return false;
    for (char c : tok)
      if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    ++count;
  }
  return count == 3;
}

}  // namespace

LabeledDataset read_libsvm(std::istream& in, std::size_t num_features,
                           std::size_t num_classes, bool one_based_indices) {
  std::string line;
  std::vector<ParsedRow> rows;
  bool first_line = true;
  std::size_t line_no = 0;
  for (; std::getline(in, line); ) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    if (first_line && looks_like_header(line)) {
      std::istringstream ss(line);
      std::string ns, nf, nc;
      ss >> ns >> nf >> nc;
      util::parse_u64_strict(ns, "libsvm", line_no);  // sample count unused
      const auto header_features = util::parse_u64_strict(nf, "libsvm", line_no);
      const auto header_classes = util::parse_u64_strict(nc, "libsvm", line_no);
      if (num_features == 0) {
        num_features = static_cast<std::size_t>(header_features);
      }
      if (num_classes == 0) {
        num_classes = static_cast<std::size_t>(header_classes);
      }
      first_line = false;
      continue;
    }
    first_line = false;
    rows.push_back(parse_row(line, line_no, one_based_indices, num_features));
  }

  std::size_t max_feature = 0, max_label = 0;
  for (const auto& r : rows) {
    for (const auto& e : r.features) {
      // size_t arithmetic: `e.col + 1` would wrap to 0 at UINT32_MAX.
      max_feature =
          std::max<std::size_t>(max_feature, std::size_t{e.col} + 1);
    }
    for (auto l : r.labels) {
      max_label = std::max<std::size_t>(max_label, std::size_t{l} + 1);
    }
  }
  if (num_features == 0) num_features = max_feature;
  if (num_classes == 0) num_classes = max_label;
  if (max_feature > num_features || max_label > num_classes) {
    throw ParseError("libsvm", "index exceeds declared dimensions");
  }

  CsrBuilder features(num_features);
  CsrBuilder labels(num_classes);
  for (auto& r : rows) {
    features.add_row(std::move(r.features));
    labels.add_indicator_row(std::move(r.labels));
  }
  return {features.build(), labels.build()};
}

LabeledDataset read_libsvm_file(const std::string& path,
                                std::size_t num_features,
                                std::size_t num_classes,
                                bool one_based_indices) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("libsvm: cannot open " + path);
  return read_libsvm(in, num_features, num_classes, one_based_indices);
}

void write_libsvm(std::ostream& out, const LabeledDataset& dataset) {
  out << dataset.num_samples() << ' ' << dataset.features.cols() << ' '
      << dataset.labels.cols() << '\n';
  for (std::size_t r = 0; r < dataset.num_samples(); ++r) {
    const auto labels = dataset.labels.row_cols(r);
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i) out << ',';
      out << labels[i];
    }
    const auto cols = dataset.features.row_cols(r);
    const auto vals = dataset.features.row_values(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      out << ' ' << cols[i] << ':' << vals[i];
    }
    out << '\n';
  }
}

void write_libsvm_file(const std::string& path, const LabeledDataset& dataset) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("libsvm: cannot open " + path);
  write_libsvm(out, dataset);
}

}  // namespace hetero::sparse
