#include "sparse/csr.h"

#include <algorithm>
#include <cassert>

namespace hetero::sparse {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<std::size_t> row_ptr,
                     std::vector<std::uint32_t> col_idx,
                     std::vector<float> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  assert(row_ptr_.size() == rows_ + 1);
  assert(col_idx_.size() == values_.size());
  assert(row_ptr_.back() == col_idx_.size());
}

CsrMatrix CsrMatrix::slice_rows(std::size_t begin, std::size_t end) const {
  assert(begin <= end && end <= rows_);
  const std::size_t lo = row_ptr_[begin];
  const std::size_t hi = row_ptr_[end];
  std::vector<std::size_t> rp(end - begin + 1);
  for (std::size_t r = begin; r <= end; ++r) rp[r - begin] = row_ptr_[r] - lo;
  std::vector<std::uint32_t> ci(col_idx_.begin() + static_cast<std::ptrdiff_t>(lo),
                                col_idx_.begin() + static_cast<std::ptrdiff_t>(hi));
  std::vector<float> vals(values_.begin() + static_cast<std::ptrdiff_t>(lo),
                          values_.begin() + static_cast<std::ptrdiff_t>(hi));
  return CsrMatrix(end - begin, cols_, std::move(rp), std::move(ci),
                   std::move(vals));
}

CsrMatrix CsrMatrix::gather_rows(std::span<const std::size_t> row_ids) const {
  std::vector<std::size_t> rp(row_ids.size() + 1, 0);
  std::size_t total = 0;
  for (std::size_t i = 0; i < row_ids.size(); ++i) {
    assert(row_ids[i] < rows_);
    total += row_nnz(row_ids[i]);
    rp[i + 1] = total;
  }
  std::vector<std::uint32_t> ci(total);
  std::vector<float> vals(total);
  for (std::size_t i = 0; i < row_ids.size(); ++i) {
    const std::size_t r = row_ids[i];
    const std::size_t src = row_ptr_[r];
    const std::size_t n = row_nnz(r);
    std::copy_n(col_idx_.data() + src, n, ci.data() + rp[i]);
    std::copy_n(values_.data() + src, n, vals.data() + rp[i]);
  }
  return CsrMatrix(row_ids.size(), cols_, std::move(rp), std::move(ci),
                   std::move(vals));
}

bool CsrMatrix::row_contains(std::size_t r, std::uint32_t c) const {
  const auto cols = row_cols(r);
  return std::binary_search(cols.begin(), cols.end(), c);
}

double CsrMatrix::avg_row_nnz() const {
  if (rows_ == 0) return 0.0;
  return static_cast<double>(nnz()) / static_cast<double>(rows_);
}

bool CsrMatrix::validate() const {
  if (row_ptr_.size() != rows_ + 1) return false;
  if (row_ptr_.front() != 0) return false;
  if (row_ptr_.back() != col_idx_.size()) return false;
  if (col_idx_.size() != values_.size()) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    if (row_ptr_[r] > row_ptr_[r + 1]) return false;
    const auto cols = row_cols(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (cols[i] >= cols_) return false;
      if (i > 0 && cols[i - 1] >= cols[i]) return false;
    }
  }
  return true;
}

void CsrBuilder::add_row(std::vector<Entry> entries) { append_row(entries); }

void CsrBuilder::add_row(std::span<const Entry> entries) {
  scratch_.assign(entries.begin(), entries.end());
  append_row(scratch_);
}

void CsrBuilder::append_row(std::vector<Entry>& entries) {
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.col < b.col; });
  // Merge duplicates.
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (out > 0 && entries[out - 1].col == entries[i].col) {
      entries[out - 1].value += entries[i].value;
    } else {
      entries[out++] = entries[i];
    }
  }
  entries.resize(out);
  for (const auto& e : entries) {
    assert(e.col < cols_);
    col_idx_.push_back(e.col);
    values_.push_back(e.value);
  }
  row_ptr_.push_back(col_idx_.size());
}

void CsrBuilder::add_indicator_row(std::vector<std::uint32_t> cols) {
  std::vector<Entry> entries;
  entries.reserve(cols.size());
  for (auto c : cols) entries.push_back({c, 1.0f});
  append_row(entries);
}

CsrMatrix CsrBuilder::build() {
  const std::size_t rows = row_ptr_.size() - 1;
  CsrMatrix m(rows, cols_, std::move(row_ptr_), std::move(col_idx_),
              std::move(values_));
  row_ptr_ = {0};
  col_idx_.clear();
  values_.clear();
  return m;
}

}  // namespace hetero::sparse
