#include "sparse/sparse_gradient.h"

#include <algorithm>
#include <cassert>

#include "sparse/ops.h"
#include "tensor/vec/vec.h"

namespace hetero::sparse {

void RowSet::reset(std::size_t logical_rows) {
  stamp_.assign(logical_rows, 0);
  epoch_ = 1;
  rows_.clear();
}

void RowSet::clear() {
  rows_.clear();
  ++epoch_;
  if (epoch_ == 0) {  // epoch wrap: stale stamps could alias, wipe them
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
}

void RowSet::add(std::span<const std::uint32_t> rows) {
  for (const auto r : rows) {
    assert(r < stamp_.size());
    if (stamp_[r] == epoch_) continue;
    stamp_[r] = epoch_;
    rows_.push_back(r);
  }
}

void RowSet::sorted_rows(std::vector<std::uint32_t>& out) const {
  out.assign(rows_.begin(), rows_.end());
  std::sort(out.begin(), out.end());
}

void SparseGradient::reset(const CsrMatrix& x, std::size_t cols) {
  touched_columns(x, scratch_);
  reset(x.cols(), cols, scratch_);
}

void SparseGradient::reset(std::size_t logical_rows, std::size_t cols,
                           std::span<const std::uint32_t> touched_sorted) {
  // Un-key the previous touched set before the map is resized or re-filled;
  // this keeps the reset cost O(touched), never O(logical_rows) beyond the
  // one-time map allocation.
  for (auto r : rows_) {
    if (r < slot_map_.size()) slot_map_[r] = kNoSlot;
  }
  if (slot_map_.size() != logical_rows) {
    slot_map_.assign(logical_rows, kNoSlot);
  }
  logical_rows_ = logical_rows;
  cols_ = cols;
  rows_.assign(touched_sorted.begin(), touched_sorted.end());
  for (std::size_t s = 0; s < rows_.size(); ++s) {
    assert(rows_[s] < logical_rows_);
    assert(s == 0 || rows_[s - 1] < rows_[s]);
    slot_map_[rows_[s]] = static_cast<std::uint32_t>(s);
  }
  values_.assign(rows_.size() * cols_, 0.0f);
}

void SparseGradient::accumulate_spmm_t(const CsrMatrix& x,
                                       const tensor::Matrix& d,
                                       const kernels::Context& ctx) {
  assert(x.rows() == d.rows());
  assert(x.cols() == logical_rows_);
  assert(d.cols() == cols_);
  const std::size_t h = cols_;
  const auto& vk = vec::kernels();
  kernels::parallel_for_ranges(
      ctx, rows_.size(), x.nnz() * h, [&](std::size_t s0, std::size_t s1) {
        for (std::size_t r = 0; r < x.rows(); ++r) {
          const float* dr = d.data() + r * h;
          const auto cols = x.row_cols(r);
          const auto vals = x.row_values(r);
          for (std::size_t i = 0; i < cols.size(); ++i) {
            const std::uint32_t s = slot_map_[cols[i]];
            assert(s != kNoSlot);
            if (s < s0 || s >= s1) continue;
            vk.axpy(vals[i], dr,
                    values_.data() + static_cast<std::size_t>(s) * h, h);
          }
        }
      });
}

void SparseGradient::apply_to(tensor::Matrix& w, float lr, float keep,
                              const kernels::Context& ctx) const {
  assert(w.rows() == logical_rows_);
  assert(w.cols() == cols_);
  const std::size_t h = cols_;
  const auto& vk = vec::kernels();
  kernels::parallel_for_ranges(
      ctx, rows_.size(), rows_.size() * h, [&](std::size_t s0, std::size_t s1) {
        for (std::size_t s = s0; s < s1; ++s) {
          // keep*w - lr*g == (-lr)*g + keep*w bit for bit (the negation is
          // exact and float addition is commutative), so the SGD row update
          // is exactly the axpby kernel.
          vk.axpby(-lr, values_.data() + s * h, keep,
                   w.data() + static_cast<std::size_t>(rows_[s]) * h, h);
        }
      });
}

void SparseGradient::add_scaled(const SparseGradient& other, float alpha) {
  assert(cols_ == other.cols_);
  assert(rows_.size() == other.rows_.size());
  assert(std::equal(rows_.begin(), rows_.end(), other.rows_.begin()));
  vec::kernels().axpy(alpha, other.values_.data(), values_.data(),
                      values_.size());
}

void SparseGradient::to_dense(tensor::Matrix& out) const {
  out.resize(logical_rows_, cols_);
  out.fill(0.0f);
  for (std::size_t s = 0; s < rows_.size(); ++s) {
    float* dst = out.data() + static_cast<std::size_t>(rows_[s]) * cols_;
    const float* src = values_.data() + s * cols_;
    std::copy_n(src, cols_, dst);
  }
}

}  // namespace hetero::sparse
