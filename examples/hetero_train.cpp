// Full-featured training driver: every trainer, every knob, optional Chrome
// trace export — the command-line face of the HeteroGPU framework.
//
//   ./build/examples/hetero_train --method adaptive --gpus 4 --gap 0.32
//       --megabatches 6 --batch-max 128 --lr 0.5 --trace run.trace.json
//   ./build/examples/hetero_train --model deep --hidden 256,128 --sparse-merge
//   ./build/examples/hetero_train --optimizer adamw --lr 0.02
//       --weight-decay 1e-4 --moment-merge average
//   ./build/examples/hetero_train --fault-plan "crash@2.5:gpu1;join@4.0:gpu1"
//       --checkpoint-every 2 --checkpoint-path run.ckpt
//   ./build/examples/hetero_train --resume-from run.ckpt
//   ./build/examples/hetero_train --nodes 2 --node-gpus 2 --cpu-replica 1
//       --batch-min 4 --net-gbs 12.5 --fault-plan "partition@2.0+1.0:node1"
//
// Methods: adaptive | elastic | sync | crossbow | async | slide
// Models:  mlp (single hidden layer) | deep (--hidden takes a comma list)
// --optimizer sgd|adam|adamw|adagrad picks the update rule (sgd default,
// bit-identical to the pre-optimizer builds); --moment-merge
// average|keep|reset governs Adam/Adagrad state at merge boundaries.
// --isa scalar|avx2|avx512 pins the SIMD kernel table (default: best the
// host supports; results are bit-identical on every ISA).
// The trace file can be loaded in chrome://tracing or https://ui.perfetto.dev
// (one row per GPU; straggler gaps and merge barriers are clearly visible).
#include <cstdio>
#include <iostream>
#include <string>

#include "comm/quant.h"
#include "core/adaptive_sgd.h"
#include "core/trainer.h"
#include "data/dataset_stats.h"
#include "fault/checkpoint.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "data/synthetic.h"
#include "sim/profiles.h"
#include "sim/gantt.h"
#include "sim/trace.h"
#include "slide/slide_trainer.h"
#include "tensor/vec/vec.h"
#include "util/cli.h"
#include "util/error.h"

using namespace hetero;

namespace {

// All flag values, dataset bytes, fault-plan specs, and checkpoints are
// untrusted input: they reject with hetero::ParseError, which exits with a
// diagnostic and code 2. Anything else escaping is an internal bug (code 3).
int run(int argc, char** argv);

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const ParseError& e) {
    std::fprintf(stderr, "hetero_train: invalid input: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hetero_train: internal error: %s\n", e.what());
    return 3;
  }
}

namespace {

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  // Pin the SIMD dispatch table before any kernel runs (empty = automatic:
  // HETERO_ISA if set, else the best ISA cpuid reports).
  vec::set_isa_from_string(args.get_string("isa", ""));
  const auto method_name = args.get_string("method", "adaptive");
  const auto gpus = static_cast<std::size_t>(args.get_int("gpus", 4));
  const auto gap = args.get_double("gap", 0.32);
  // Multi-node topology: --nodes N servers of --node-gpus GPUs each
  // (default: --gpus split evenly), plus --cpu-replica slow CPU compute
  // replicas scheduled like any other device. The merge is two-level past
  // one node: the intra-node ring, then a chunked inter-node ring on a
  // --net-gbs/--net-latency-us network link.
  const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 1));
  const auto node_gpus =
      static_cast<std::size_t>(args.get_int("node-gpus", 0));
  const auto cpu_replicas =
      static_cast<std::size_t>(args.get_int("cpu-replica", 0));
  const auto cpu_slowdown = args.get_double("cpu-slowdown", 25.0);
  const auto net_gbs = args.get_double("net-gbs", 12.5);
  const auto net_latency_us = args.get_double("net-latency-us", 50.0);
  const auto megabatches =
      static_cast<std::size_t>(args.get_int("megabatches", 6));
  const auto batch_max =
      static_cast<std::size_t>(args.get_int("batch-max", 128));
  // b_min for Algorithm 1 (0 = b_max/8). A CPU replica 10-50x slower than
  // the GPUs needs a deeper floor than the default 8x range to converge to
  // its equal-update-count batch.
  const auto batch_min =
      static_cast<std::size_t>(args.get_int("batch-min", 0));
  const auto batches_per_megabatch =
      static_cast<std::size_t>(args.get_int("batches-per-megabatch", 40));
  const auto lr = args.get_double("lr", 0.5);
  const auto model_name = args.get_string("model", "mlp");
  std::vector<std::size_t> hidden_layers;
  try {
    hidden_layers = args.get_size_list("hidden", {48});
  } catch (const ParseError& e) {
    std::fprintf(stderr, "--hidden: %s\n", e.what());
    return 2;
  }
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 12345));
  const auto dataset_name = args.get_string("dataset", "amazon");
  const auto trace_path = args.get_string("trace", "");
  const bool threaded = args.get_bool("threaded", false);
  const auto weight_decay = args.get_double("weight-decay", 0.0);
  // Update rule (nn/optimizer.h): sgd is the fused bit-identical default;
  // adam/adamw/adagrad keep lazy touched-row state for the sparse layer.
  const auto optimizer_name = args.get_string("optimizer", "sgd");
  // Merge-boundary policy for the optimizer state (DESIGN.md §11).
  const auto moment_merge_name = args.get_string("moment-merge", "average");
  const auto warmup = static_cast<std::size_t>(args.get_int("warmup", 0));
  const bool adaptive_cadence = args.get_bool("adaptive-cadence", false);
  const auto speeds_str = args.get_string("speeds", "");  // "1.0,0.9,0.76"
  const bool show_gantt = args.get_bool("gantt", false);
  const auto lr_decay = args.get_double("lr-decay", 1.0);
  const auto lr_decay_every =
      static_cast<std::size_t>(args.get_int("lr-decay-every", 0));
  const auto patience = static_cast<std::size_t>(args.get_int("patience", 0));
  // Real-math worker threads per kernel (0 = all hardware threads). Results
  // are bit-identical across any setting; this only changes wall-clock.
  const auto kernel_threads =
      static_cast<std::size_t>(args.get_int("kernel-threads", 1));
  // Delta-aware merge: reduce/rebroadcast only the touched W1 rows at each
  // mega-batch merge. Bit-identical to the dense merge; only comm cost and
  // merge wall-clock change.
  const bool sparse_merge = args.get_bool("sparse-merge", false);
  // Merge-payload compression: fp32 (bit-exact oracle, default), fp16
  // (dynamic loss scale), or int8 (per-group scales). fp16/int8 ship 2x/4x
  // fewer element bytes per merge with error-feedback residuals absorbing
  // the quantization noise.
  const auto merge_precision_name =
      args.get_string("merge-precision", "fp32");
  const auto allreduce_streams =
      static_cast<std::size_t>(args.get_int("allreduce-streams", 0));
  // Fault subsystem: deterministic fault schedule + checkpointed recovery.
  const auto fault_plan_spec = args.get_string("fault-plan", "");
  const auto checkpoint_every =
      static_cast<std::size_t>(args.get_int("checkpoint-every", 0));
  const auto checkpoint_path =
      args.get_string("checkpoint-path", "hetero.ckpt");
  const auto resume_from = args.get_string("resume-from", "");
  if (args.report_unknown()) return 1;

  nn::ModelKind model_kind;
  if (model_name == "mlp") {
    model_kind = nn::ModelKind::kMlp;
  } else if (model_name == "deep") {
    model_kind = nn::ModelKind::kDeep;
  } else {
    std::fprintf(stderr, "unknown --model %s (expected mlp or deep)\n",
                 model_name.c_str());
    return 1;
  }
  if (model_kind == nn::ModelKind::kMlp && hidden_layers.size() != 1) {
    std::fprintf(stderr,
                 "--model mlp takes exactly one hidden width; "
                 "use --model deep for a layer list\n");
    return 1;
  }

  auto data_cfg = dataset_name == "delicious" ? data::delicious200k_small()
                                              : data::amazon670k_small();
  data_cfg.num_features = 4096;
  data_cfg.num_classes = 1024;
  data_cfg.num_train = 8000;
  data_cfg.num_test = 1600;
  data_cfg.seed = seed;
  const auto dataset = data::generate_xml_dataset(data_cfg);
  data::print_stats_header(std::cout);
  data::print_stats_row(std::cout, data::compute_stats(dataset));

  core::TrainerConfig cfg;
  cfg.model_kind = model_kind;
  cfg.hidden = hidden_layers.front();
  cfg.hidden_layers = hidden_layers;
  cfg.batch_max = batch_max;
  cfg.batch_min = batch_min;
  cfg.batches_per_megabatch = batches_per_megabatch;
  cfg.num_megabatches = megabatches;
  cfg.learning_rate = lr;
  cfg.compute_scale = 100.0;
  cfg.seed = seed;
  cfg.weight_decay = weight_decay;
  cfg.warmup_megabatches = warmup;
  cfg.adaptive_scaling_cadence = adaptive_cadence;
  cfg.lr_decay = lr_decay;
  cfg.lr_decay_every = lr_decay_every;
  cfg.early_stop_patience = patience;
  cfg.early_stop_delta = 0.002;
  cfg.kernel_threads = kernel_threads;
  cfg.sparse_merge = sparse_merge;
  if (const auto mp = comm::parse_precision(merge_precision_name)) {
    cfg.merge_precision = *mp;
  } else {
    std::fprintf(stderr,
                 "unknown --merge-precision %s (expected fp32, fp16, or "
                 "int8)\n",
                 merge_precision_name.c_str());
    return 1;
  }
  if (const auto kind = nn::parse_optimizer_kind(optimizer_name)) {
    cfg.optimizer.kind = *kind;
  } else {
    std::fprintf(stderr,
                 "unknown --optimizer %s (expected sgd, adam, adamw, or "
                 "adagrad)\n",
                 optimizer_name.c_str());
    return 1;
  }
  if (const auto mm = core::parse_moment_merge(moment_merge_name)) {
    cfg.moment_merge = *mm;
  } else {
    std::fprintf(stderr,
                 "unknown --moment-merge %s (expected average, keep, or "
                 "reset)\n",
                 moment_merge_name.c_str());
    return 1;
  }
  cfg.allreduce_streams = allreduce_streams;
  if (threaded) cfg.mode = core::ExecutionMode::kThreaded;

  // Optional custom server topology: --speeds 1.0,0.9,0.76 overrides
  // --gpus/--gap with explicit per-device speed factors.
  std::vector<double> speeds;
  for (std::size_t pos = 0; pos < speeds_str.size();) {
    auto comma = speeds_str.find(',', pos);
    if (comma == std::string::npos) comma = speeds_str.size();
    speeds.push_back(std::strtod(speeds_str.substr(pos, comma - pos).c_str(),
                                 nullptr));
    pos = comma + 1;
  }

  core::TrainResult result;
  sim::Tracer tracer;
  if (method_name == "slide") {
    if (!fault_plan_spec.empty() || !resume_from.empty() ||
        checkpoint_every > 0) {
      std::fprintf(stderr,
                   "--fault-plan/--checkpoint-every/--resume-from are not "
                   "supported with --method slide\n");
      return 1;
    }
    if (hidden_layers.size() != 1) {
      std::fprintf(stderr, "--method slide supports one hidden layer only\n");
      return 1;
    }
    slide::SlideConfig scfg;
    scfg.hidden = hidden_layers.front();
    scfg.learning_rate = lr / 10.0;
    scfg.min_active = data_cfg.num_classes / 16;
    scfg.max_active = data_cfg.num_classes / 6;
    scfg.eval_every_samples = cfg.megabatch_samples();
    scfg.total_samples = cfg.megabatch_samples() * megabatches;
    scfg.compute_scale = cfg.compute_scale;
    scfg.seed = seed;
    result = slide::SlideTrainer(dataset, scfg).train();
  } else {
    core::Method method;
    if (method_name == "adaptive") {
      method = core::Method::kAdaptive;
    } else if (method_name == "elastic") {
      method = core::Method::kElastic;
    } else if (method_name == "sync") {
      method = core::Method::kSync;
    } else if (method_name == "crossbow") {
      method = core::Method::kCrossbow;
    } else if (method_name == "async") {
      method = core::Method::kAsync;
    } else {
      std::fprintf(stderr, "unknown --method %s\n", method_name.c_str());
      return 1;
    }
    const bool cluster = nodes > 1 || node_gpus > 0 || cpu_replicas > 0;
    if (nodes == 0) {
      std::fprintf(stderr, "--nodes must be at least 1\n");
      return 1;
    }
    if (cluster && !speeds.empty()) {
      std::fprintf(stderr,
                   "--speeds describes a single server; it cannot be "
                   "combined with --nodes/--node-gpus/--cpu-replica\n");
      return 1;
    }
    std::size_t gpus_per_node = node_gpus;
    if (cluster && gpus_per_node == 0) {
      if (gpus % nodes != 0) {
        std::fprintf(stderr,
                     "--gpus %zu does not divide across --nodes %zu; pass "
                     "--node-gpus explicitly\n",
                     gpus, nodes);
        return 1;
      }
      gpus_per_node = gpus / nodes;
    }
    if (cluster && gpus_per_node == 0 && cpu_replicas == 0) {
      std::fprintf(stderr, "cluster has no devices\n");
      return 1;
    }
    std::vector<sim::DeviceSpec> devices;
    if (cluster) {
      devices = sim::cluster_devices(nodes, gpus_per_node, cpu_replicas, gap,
                                     /*jitter_sigma=*/0.03, cpu_slowdown);
      cfg.num_nodes = nodes;
      cfg.cpu_replicas = cpu_replicas;
      cfg.net_bandwidth_gbs = net_gbs;
      cfg.net_latency_us = net_latency_us;
      std::printf(
          "topology: %zu node(s) x %zu GPU(s) + %zu CPU replica(s), "
          "net %.1f GB/s %.0fus\n",
          nodes, gpus_per_node, cpu_replicas, net_gbs, net_latency_us);
    } else {
      devices = speeds.empty() ? sim::v100_heterogeneous(gpus, gap)
                               : sim::v100_custom(speeds);
    }
    auto trainer = core::make_trainer(method, dataset, cfg, devices);

    auto* adaptive = dynamic_cast<core::AdaptiveSgdTrainer*>(trainer.get());
    if ((checkpoint_every > 0 || !resume_from.empty()) &&
        adaptive == nullptr) {
      std::fprintf(stderr,
                   "--checkpoint-every/--resume-from support --method "
                   "adaptive only\n");
      return 1;
    }
    // Resume before arming the fault plan: membership events already
    // reflected in the checkpoint must not fire twice.
    double resumed_vtime = -1.0;
    if (!resume_from.empty()) {
      try {
        const auto ckpt = fault::load_checkpoint_file(resume_from);
        fault::restore_checkpoint(*adaptive, ckpt);
        resumed_vtime = ckpt.vtime;
        std::printf("resumed from %s: %zu mega-batches, vtime %.4fs\n",
                    resume_from.c_str(),
                    static_cast<std::size_t>(ckpt.megabatches_completed),
                    ckpt.vtime);
      } catch (const ParseError& e) {
        // Corrupt/truncated checkpoint bytes: typed error with byte offset.
        std::fprintf(stderr, "--resume-from: corrupt checkpoint: %s\n",
                     e.what());
        return 2;
      } catch (const std::exception& e) {
        // Well-formed checkpoint that does not match this run's config.
        std::fprintf(stderr, "--resume-from: %s\n", e.what());
        return 1;
      }
    }
    if (!fault_plan_spec.empty()) {
      try {
        fault::FaultInjector(fault::FaultPlan::parse(fault_plan_spec))
            .arm(trainer->runtime(), resumed_vtime);
      } catch (const ParseError& e) {
        std::fprintf(stderr, "--fault-plan: %s\n", e.what());
        return 2;
      }
    }
    if (checkpoint_every > 0) {
      fault::enable_periodic_checkpoint(*adaptive, checkpoint_path,
                                        checkpoint_every);
    }

    if (!trace_path.empty() || show_gantt) {
      trainer->runtime().set_tracer(&tracer);
    }
    result = trainer->train();
    if (adaptive != nullptr && cluster) {
      // Where Algorithm 1 converged each device: the interesting readout of
      // a heterogeneous cluster run (the CPU replica should sit far below
      // the GPUs).
      std::printf("final batch sizes:");
      const auto& sgd = adaptive->sgd_state();
      for (std::size_t g = 0; g < sgd.size() && g < devices.size(); ++g) {
        std::printf(" %s=%zu", devices[g].name.c_str(), sgd[g].batch_size);
      }
      std::printf("\n");
    }
  }

  std::printf("\n%-10s %10s %9s %8s %8s\n", "megabatch", "vtime(s)",
              "samples", "top1", "top5");
  for (const auto& p : result.curve) {
    std::printf("%-10zu %10.4f %9zu %7.2f%% %7.2f%%\n", p.megabatch, p.vtime,
                p.samples, 100 * p.top1, 100 * p.top5);
  }
  std::printf("\nmethod %s: best top1 %.2f%%, total vtime %.4fs, comm %.4fs",
              result.method.c_str(), 100 * result.best_top1(),
              result.total_vtime, result.comm_seconds);
  if (result.method == "async-sgd") {
    std::printf(", avg gradient staleness %.2f", result.avg_staleness);
  }
  if (result.merges > 0 && result.method == "adaptive-sgd") {
    std::printf(", perturbation freq %.0f%%",
                100 * result.perturbation_frequency());
  }
  std::printf("\n");
  if (result.faults.any()) {
    std::printf(
        "faults: %zu events (%zu slowdowns, %zu stalls, %zu oom windows, "
        "%zu node-level), %zu crashes, %zu joins, %zu oom clamps, "
        "%zu degraded merges, recovery %.4fs\n",
        result.faults.events_injected, result.faults.slowdowns,
        result.faults.stalls, result.faults.oom_events,
        result.faults.node_events, result.faults.crashes,
        result.faults.joins, result.faults.oom_clamps,
        result.faults.degraded_merges, result.faults.recovery_seconds);
  }

  if (!trace_path.empty() && method_name != "slide") {
    tracer.write_chrome_json_file(trace_path);
    std::printf("chrome trace (%zu events) written to %s\n", tracer.size(),
                trace_path.c_str());
  }
  if (show_gantt && method_name != "slide") {
    sim::GanttOptions opts;
    opts.width = 100;
    std::printf("\n%s", sim::render_gantt(tracer, opts).c_str());
  }
  return 0;
}

}  // namespace
