// Recreates the paper's Figure 2 in the terminal: the execution schedule of
// elastic vs adaptive SGD on a heterogeneous server, rendered as an ASCII
// Gantt chart from the simulator's trace.
//
// Elastic SGD statically assigns the same number of equal batches to every
// GPU, so the fast GPUs idle at the mega-batch barrier ('.') while the slow
// one finishes. Adaptive SGD dispatches batches on availability with scaled
// batch sizes, packing the timeline tightly.
//
//   ./build/examples/schedule_gantt [--gpus 4] [--gap 0.5] [--width 100]
#include <cstdio>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "sim/gantt.h"
#include "sim/profiles.h"
#include "util/cli.h"

using namespace hetero;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto gpus = static_cast<std::size_t>(args.get_int("gpus", 4));
  const auto gap = args.get_double("gap", 0.5);
  const auto width = static_cast<std::size_t>(args.get_int("width", 100));
  if (args.report_unknown()) return 1;

  auto data_cfg = data::tiny_profile();
  data_cfg.num_train = 4000;
  const auto dataset = data::generate_xml_dataset(data_cfg);

  core::TrainerConfig cfg;
  cfg.hidden = 32;
  cfg.batch_max = 64;
  cfg.batches_per_megabatch = 24;
  cfg.num_megabatches = 2;
  cfg.learning_rate = 0.3;
  cfg.compute_scale = 2000.0;
  cfg.eval_samples = 100;

  const auto devices = sim::v100_heterogeneous(gpus, gap);

  for (const auto method : {core::Method::kElastic, core::Method::kAdaptive}) {
    sim::Tracer tracer;
    auto trainer = core::make_trainer(method, dataset, cfg, devices);
    trainer->runtime().set_tracer(&tracer);
    const auto result = trainer->train();

    std::printf("\n=== %s (%zu GPUs, %.0f%% speed gap) ===\n",
                result.method.c_str(), gpus, 100 * gap);
    sim::GanttOptions opts;
    opts.width = width;
    opts.include_host_row = false;
    std::printf("%s", sim::render_gantt(tracer, opts).c_str());
    std::printf("total vtime %.4fs; per-GPU busy: ", result.total_vtime);
    for (std::size_t g = 0; g < gpus; ++g) {
      std::printf("%.0f%% ", 100.0 * result.gpus[g].busy_seconds /
                                 result.total_vtime);
    }
    std::printf("\n");
  }
  std::printf(
      "\nReading: in the elastic chart the fast GPUs show '.' (idle barrier "
      "wait) before each\n'=' merge; adaptive fills those gaps with extra "
      "batches on the fast GPUs (Figure 2).\n");
  return 0;
}
