// Online inference serving CLI: train-while-serve or serve-from-file.
//
//   # Train-while-serve: adaptive training publishes a snapshot at every
//   # merge boundary; queries are answered live against the newest version.
//   ./build/examples/hetero_serve --megabatches 4 --requests 200 --qps 2000
//
//   # SLIDE top-k (LSH candidates instead of a full output-layer scan):
//   ./build/examples/hetero_serve --lsh --topk 10
//
//   # Standalone serving from a file: an HGCK training checkpoint
//   # (hetero_train --checkpoint-every) or an HGPU model dump.
//   ./build/examples/hetero_serve --snapshot-from-checkpoint run.ckpt
//
//   # Dump the final snapshot for later standalone serving:
//   ./build/examples/hetero_serve --dump-snapshot model.hgpu
//
// Queries are test-split rows of the same synthetic XML dataset the
// training stack uses. Exit codes follow hetero_train: 2 = bad input
// (ParseError), 3 = internal error.
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/adaptive_sgd.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "sim/profiles.h"
#include "tensor/vec/vec.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/stats.h"

using namespace hetero;

namespace {

int run(int argc, char** argv);

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const ParseError& e) {
    std::fprintf(stderr, "hetero_serve: invalid input: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hetero_serve: internal error: %s\n", e.what());
    return 3;
  }
}

namespace {

serve::Request make_request(const sparse::CsrMatrix& features,
                            std::size_t row) {
  serve::Request req;
  const auto cols = features.row_cols(row);
  const auto vals = features.row_values(row);
  req.features.reserve(cols.size());
  for (std::size_t i = 0; i < cols.size(); ++i) {
    req.features.push_back({cols[i], vals[i]});
  }
  return req;
}

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  vec::set_isa_from_string(args.get_string("isa", ""));
  const auto snapshot_file = args.get_string("snapshot-from-checkpoint", "");
  const auto topk = static_cast<std::size_t>(args.get_int("topk", 5));
  const bool use_lsh = args.get_bool("lsh", false);
  const auto workers = static_cast<std::size_t>(args.get_int("workers", 2));
  const auto latency_budget_us =
      static_cast<std::uint64_t>(args.get_int("latency-budget-us", 2000));
  const auto max_batch = static_cast<std::size_t>(args.get_int("max-batch", 8));
  const auto queue_cap =
      static_cast<std::size_t>(args.get_int("queue-cap", 1024));
  const auto num_requests =
      static_cast<std::size_t>(args.get_int("requests", 200));
  const auto qps = args.get_double("qps", 2000.0);
  const auto megabatches =
      static_cast<std::size_t>(args.get_int("megabatches", 4));
  const auto gpus = static_cast<std::size_t>(args.get_int("gpus", 3));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 12345));
  const auto dump_snapshot = args.get_string("dump-snapshot", "");
  if (args.report_unknown()) return 1;

  // Same synthetic workload as hetero_train, so a checkpoint from a training
  // run serves the dataset it was trained on.
  auto data_cfg = data::amazon670k_small();
  data_cfg.num_features = 4096;
  data_cfg.num_classes = 1024;
  data_cfg.num_train = 8000;
  data_cfg.num_test = 1600;
  data_cfg.seed = seed;
  const auto dataset = data::generate_xml_dataset(data_cfg);
  const auto& queries = dataset.test.features;

  serve::SnapshotStore store;
  std::unique_ptr<core::Trainer> trainer;
  std::thread training;

  if (!snapshot_file.empty()) {
    const auto snap = store.publish_from_file(snapshot_file);
    std::printf("serving from %s: version %llu, vtime %.4fs\n",
                snapshot_file.c_str(),
                static_cast<unsigned long long>(snap->version()),
                snap->vtime());
  } else {
    core::TrainerConfig cfg;
    cfg.num_megabatches = megabatches;
    cfg.seed = seed;
    trainer = core::make_trainer(core::Method::kAdaptive, dataset, cfg,
                                 sim::v100_heterogeneous(gpus, 0.32));
    // Serve the initial model until the first merge boundary replaces it.
    store.publish(trainer->runtime().global_model(), 0.0);
    trainer->runtime().set_publish_hook(
        [&store](const nn::Model& m, double vtime) {
          store.publish(m, vtime);
        });
    training = std::thread([&trainer] { trainer->train(); });
    std::printf("train-while-serve: %zu megabatches on %zu GPUs\n",
                megabatches, gpus);
  }

  serve::ServerConfig scfg;
  scfg.workers = workers;
  scfg.max_batch = max_batch;
  scfg.queue_cap = queue_cap;
  scfg.latency_budget_us = latency_budget_us;
  scfg.topk = topk;
  scfg.use_lsh = use_lsh;
  serve::Server server(store, scfg);

  const auto interarrival =
      qps > 0.0 ? std::chrono::duration<double>(1.0 / qps)
                : std::chrono::duration<double>(0.0);
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(num_requests);
  auto next_send = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < num_requests; ++r) {
    if (qps > 0.0) {
      std::this_thread::sleep_until(next_send);
      next_send += std::chrono::duration_cast<
          std::chrono::steady_clock::duration>(interarrival);
    }
    futures.push_back(
        server.submit(make_request(queries, r % queries.rows())));
  }

  std::vector<double> latencies_us;
  std::vector<serve::Response> sample;
  std::size_t shed = 0;
  double last_freshness = 0.0;
  std::uint64_t last_version = 0;
  for (auto& f : futures) {
    auto resp = f.get();
    if (resp.shed) {
      ++shed;
      continue;
    }
    latencies_us.push_back(static_cast<double>(resp.service_us));
    last_freshness = resp.freshness_lag;
    last_version = resp.snapshot_version;
    if (sample.size() < 3) sample.push_back(std::move(resp));
  }

  if (training.joinable()) training.join();
  server.stop();

  for (std::size_t i = 0; i < sample.size(); ++i) {
    std::printf("sample %zu (version %llu, wave %zu, %s):", i,
                static_cast<unsigned long long>(sample[i].snapshot_version),
                sample[i].wave_size,
                sample[i].lsh_path ? "lsh"
                : sample[i].lsh_fallback ? "lsh-fallback"
                                         : "exact");
    for (const auto& s : sample[i].topk) {
      std::printf(" %u:%.3f", s.label, s.score);
    }
    std::printf("\n");
  }

  const auto stats = server.stats();
  std::printf(
      "served %llu / %zu (shed %zu), waves %llu, mean wave %.2f\n",
      static_cast<unsigned long long>(stats.served), num_requests, shed,
      static_cast<unsigned long long>(stats.waves),
      stats.waves > 0 ? static_cast<double>(stats.served) /
                            static_cast<double>(stats.waves)
                      : 0.0);
  if (!latencies_us.empty()) {
    std::printf("latency p50 %.0fus p99 %.0fus\n",
                util::quantile(latencies_us, 0.5),
                util::quantile(latencies_us, 0.99));
  }
  if (use_lsh) {
    std::printf("lsh rows %llu, fallback rows %llu\n",
                static_cast<unsigned long long>(stats.lsh_rows),
                static_cast<unsigned long long>(stats.lsh_fallback_rows));
  }
  std::printf("final snapshot version %llu, freshness lag %.4fs (vtime)\n",
              static_cast<unsigned long long>(last_version), last_freshness);

  if (!dump_snapshot.empty()) {
    store.dump_current(dump_snapshot);
    std::printf("snapshot dumped to %s\n", dump_snapshot.c_str());
  }
  return 0;
}

}  // namespace
