// Quickstart: train the paper's MLP on a synthetic XML dataset with
// Adaptive SGD on 4 simulated heterogeneous V100s, and compare against
// Elastic SGD.
//
//   ./build/examples/quickstart [--megabatches 6] [--gpus 4] [--seed 42]
//
// Prints the accuracy curve (virtual time vs top-1) for both methods and
// the per-GPU batch-size evolution of Adaptive SGD.
#include <cstdio>
#include <iostream>

#include "core/trainer.h"
#include "data/dataset_stats.h"
#include "data/synthetic.h"
#include "sim/profiles.h"
#include "util/cli.h"

using namespace hetero;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto megabatches =
      static_cast<std::size_t>(args.get_int("megabatches", 6));
  const auto num_gpus = static_cast<std::size_t>(args.get_int("gpus", 4));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  if (args.report_unknown()) return 1;

  // A small dataset so the example runs in seconds.
  auto data_cfg = data::tiny_profile();
  data_cfg.num_train = 4000;
  data_cfg.num_classes = 128;
  data_cfg.num_features = 1024;
  data_cfg.seed = seed;
  const auto dataset = data::generate_xml_dataset(data_cfg);

  data::print_stats_header(std::cout);
  data::print_stats_row(std::cout, data::compute_stats(dataset));

  core::TrainerConfig cfg;
  cfg.hidden = 32;
  cfg.batch_max = 64;
  cfg.batches_per_megabatch = 20;
  cfg.num_megabatches = megabatches;
  cfg.learning_rate = 0.5;
  // The tiny model is ~400x smaller than the paper's workload; restore the
  // realistic compute-to-launch-overhead ratio (see TrainerConfig docs).
  cfg.compute_scale = 400.0;
  cfg.seed = seed;

  const auto devices = sim::v100_heterogeneous(num_gpus);

  for (const auto method : {core::Method::kAdaptive, core::Method::kElastic}) {
    auto trainer = core::make_trainer(method, dataset, cfg, devices);
    const auto result = trainer->train();

    std::printf("\n=== %s on %zu GPUs ===\n", result.method.c_str(),
                result.num_gpus);
    std::printf("%10s %10s %8s %8s\n", "vtime(s)", "samples", "top1", "top5");
    for (const auto& p : result.curve) {
      std::printf("%10.4f %10zu %7.1f%% %7.1f%%\n", p.vtime, p.samples,
                  100.0 * p.top1, 100.0 * p.top5);
    }
    std::printf("total vtime %.4fs, comm %.4fs, perturbation freq %.0f%%\n",
                result.total_vtime, result.comm_seconds,
                100.0 * result.perturbation_frequency());
    if (method == core::Method::kAdaptive) {
      std::printf("batch sizes per mega-batch:\n");
      for (std::size_t g = 0; g < result.gpus.size(); ++g) {
        std::printf("  gpu%zu:", g);
        for (auto b : result.gpus[g].batch_size) std::printf(" %4zu", b);
        std::printf("  (updates:");
        for (auto u : result.gpus[g].updates) std::printf(" %3zu", u);
        std::printf(")\n");
      }
    }
  }
  return 0;
}
