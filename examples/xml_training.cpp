// Domain scenario: end-to-end extreme multi-label classification training
// on an Amazon-670k-shaped dataset, comparing all four multi-GPU methods
// plus the SLIDE CPU baseline — a miniature version of the paper's full
// evaluation (Figures 4 and 5) driven entirely through the public API.
//
//   ./build/examples/xml_training [--gpus 4] [--megabatches 4]
//                                 [--dataset amazon|delicious]
//                                 [--libsvm path/to/train.svm]
//
// When --libsvm is given, a real dataset in (multi-label) libSVM format is
// loaded instead of the synthetic one; the last 20% of rows become the test
// split. This is the drop-in path for the actual Extreme Classification
// Repository files.
#include <cstdio>
#include <iostream>
#include <string>

#include "core/trainer.h"
#include "data/dataset_stats.h"
#include "data/synthetic.h"
#include "sim/profiles.h"
#include "slide/slide_trainer.h"
#include "sparse/libsvm.h"
#include "util/cli.h"

using namespace hetero;

namespace {

data::XmlDataset load_libsvm_dataset(const std::string& path) {
  const auto full = sparse::read_libsvm_file(path);
  const std::size_t n = full.num_samples();
  const std::size_t train_n = n - n / 5;
  data::XmlDataset out;
  out.name = path;
  out.train = {full.features.slice_rows(0, train_n),
               full.labels.slice_rows(0, train_n)};
  out.test = {full.features.slice_rows(train_n, n),
              full.labels.slice_rows(train_n, n)};
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto gpus = static_cast<std::size_t>(args.get_int("gpus", 4));
  const auto megabatches =
      static_cast<std::size_t>(args.get_int("megabatches", 4));
  const auto dataset_name = args.get_string("dataset", "amazon");
  const auto libsvm_path = args.get_string("libsvm", "");
  if (args.report_unknown()) return 1;

  data::XmlDataset dataset;
  if (!libsvm_path.empty()) {
    dataset = load_libsvm_dataset(libsvm_path);
  } else {
    auto cfg = dataset_name == "delicious" ? data::delicious200k_small()
                                           : data::amazon670k_small();
    cfg.num_features = 4096;
    cfg.num_classes = 1024;
    cfg.num_train = 8000;
    cfg.num_test = 1600;
    dataset = data::generate_xml_dataset(cfg);
  }

  std::printf("dataset: %s\n", dataset.name.c_str());
  data::print_stats_header(std::cout);
  data::print_stats_row(std::cout, data::compute_stats(dataset));

  core::TrainerConfig cfg;
  cfg.hidden = 64;
  cfg.batch_max = 128;
  cfg.batches_per_megabatch = 25;
  cfg.num_megabatches = megabatches;
  cfg.learning_rate = 0.5;
  cfg.compute_scale = 100.0;

  const auto devices = sim::v100_heterogeneous(gpus);
  std::printf("\nsimulated server:\n");
  for (const auto& d : devices) {
    std::printf("  %s\n", sim::describe(d).c_str());
  }

  std::printf("\n%-14s %10s %10s %10s %12s\n", "method", "best top1",
              "final top1", "vtime(s)", "comm(s)");
  for (const auto method :
       {core::Method::kAdaptive, core::Method::kElastic, core::Method::kSync,
        core::Method::kCrossbow}) {
    auto trainer = core::make_trainer(method, dataset, cfg, devices);
    const auto r = trainer->train();
    std::printf("%-14s %9.2f%% %9.2f%% %10.4f %12.5f\n", r.method.c_str(),
                100 * r.best_top1(), 100 * r.final_top1(), r.total_vtime,
                r.comm_seconds);
  }
  {
    slide::SlideConfig scfg;
    scfg.hidden = cfg.hidden;
    scfg.learning_rate = cfg.learning_rate / 10.0;
    scfg.min_active = dataset.train.labels.cols() / 16;
    scfg.max_active = dataset.train.labels.cols() / 6;
    scfg.eval_every_samples = cfg.megabatch_samples();
    scfg.total_samples = cfg.megabatch_samples() * cfg.num_megabatches;
    scfg.compute_scale = cfg.compute_scale;
    const auto r = slide::SlideTrainer(dataset, scfg).train();
    std::printf("%-14s %9.2f%% %9.2f%% %10.4f %12s\n", "slide-cpu",
                100 * r.best_top1(), 100 * r.final_top1(), r.total_vtime,
                "n/a");
  }
  return 0;
}
