// Dataset tooling: generate Table-I-shaped synthetic XML datasets, save and
// reload them in libSVM format, apply feature hashing, and print their
// statistics — the data-preparation side of the framework as a standalone
// utility.
//
//   # generate and save
//   ./build/examples/dataset_tool --profile amazon --out /tmp/amazon.svm
//   # inspect any multi-label libSVM file
//   ./build/examples/dataset_tool --in /tmp/amazon.svm
//   # reduce dimensionality with the hashing trick
//   ./build/examples/dataset_tool --in /tmp/amazon.svm --hash-bits 12
//       --out /tmp/amazon_hashed.svm
//   # binary cache (fast reload for config sweeps)
//   ./build/examples/dataset_tool --profile amazon --cache-out /tmp/a.hgds
//   ./build/examples/dataset_tool --cache-in /tmp/a.hgds
#include <cstdio>
#include <iostream>

#include "data/binary_cache.h"
#include "data/dataset_stats.h"
#include "data/feature_hashing.h"
#include "data/synthetic.h"
#include "sparse/libsvm.h"
#include "util/cli.h"
#include "util/error.h"

using namespace hetero;

namespace {

// Input files are untrusted: a malformed libSVM line or flag value exits
// with a diagnostic and code 2, not an abort.
int run(int argc, char** argv);

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const ParseError& e) {
    std::fprintf(stderr, "dataset_tool: invalid input: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dataset_tool: internal error: %s\n", e.what());
    return 3;
  }
}

namespace {

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto profile = args.get_string("profile", "amazon");
  const auto in_path = args.get_string("in", "");
  const auto out_path = args.get_string("out", "");
  const auto cache_in = args.get_string("cache-in", "");
  const auto cache_out = args.get_string("cache-out", "");
  const auto hash_bits = static_cast<std::size_t>(args.get_int("hash-bits", 0));
  const auto train_size = static_cast<std::size_t>(args.get_int("train", 0));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  if (args.report_unknown()) return 1;

  data::XmlDataset dataset;
  if (!cache_in.empty()) {
    dataset = data::load_dataset_file(cache_in);
  } else if (!in_path.empty()) {
    const auto full = sparse::read_libsvm_file(in_path);
    const std::size_t n = full.num_samples();
    const std::size_t train_n = n - n / 5;
    dataset.name = in_path;
    dataset.train = {full.features.slice_rows(0, train_n),
                     full.labels.slice_rows(0, train_n)};
    dataset.test = {full.features.slice_rows(train_n, n),
                    full.labels.slice_rows(train_n, n)};
  } else {
    auto cfg = profile == "delicious" ? data::delicious200k_small()
               : profile == "tiny"    ? data::tiny_profile()
                                      : data::amazon670k_small();
    if (train_size != 0) cfg.num_train = train_size;
    cfg.seed = seed;
    dataset = data::generate_xml_dataset(cfg);
  }

  if (hash_bits != 0) {
    data::FeatureHashConfig hcfg;
    hcfg.bits = hash_bits;
    hcfg.seed = seed;
    data::hash_dataset_features(dataset.train, hcfg);
    data::hash_dataset_features(dataset.test, hcfg);
    dataset.name += "+hash" + std::to_string(hash_bits);
  }

  data::print_stats_header(std::cout);
  data::print_stats_row(std::cout, data::compute_stats(dataset));

  if (!out_path.empty()) {
    sparse::write_libsvm_file(out_path, dataset.train);
    sparse::write_libsvm_file(out_path + ".test", dataset.test);
    std::printf("wrote %s (train) and %s.test (test split)\n",
                out_path.c_str(), out_path.c_str());
  }
  if (!cache_out.empty()) {
    data::save_dataset_file(cache_out, dataset);
    std::printf("wrote binary cache %s\n", cache_out.c_str());
  }
  return 0;
}

}  // namespace
