// Domain scenario: explore how the DEGREE of GPU heterogeneity changes the
// value of Adaptive SGD over Elastic SGD.
//
// The paper evaluates one server (4 V100s, ~32% gap). This example sweeps
// the fastest-to-slowest gap from a homogeneous server to a severely skewed
// one and reports the straggler time Elastic SGD loses at the mega-batch
// barrier versus Adaptive SGD's dynamically balanced schedule — answering
// "when is heterogeneity-aware training worth it?" for a deployment.
//
//   ./build/examples/heterogeneity_explorer [--megabatches 4] [--gpus 4]
#include <cstdio>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "sim/profiles.h"
#include "util/cli.h"

using namespace hetero;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto megabatches =
      static_cast<std::size_t>(args.get_int("megabatches", 4));
  const auto gpus = static_cast<std::size_t>(args.get_int("gpus", 4));
  if (args.report_unknown()) return 1;

  auto data_cfg = data::amazon670k_small();
  data_cfg.num_features = 4096;
  data_cfg.num_classes = 512;
  data_cfg.num_train = 8000;
  data_cfg.num_test = 1600;
  const auto dataset = data::generate_xml_dataset(data_cfg);

  core::TrainerConfig cfg;
  cfg.hidden = 48;
  cfg.batch_max = 128;
  cfg.batches_per_megabatch = 40;
  cfg.num_megabatches = megabatches;
  cfg.learning_rate = 0.5;
  cfg.compute_scale = 100.0;

  std::printf(
      "Adaptive vs Elastic SGD across heterogeneity levels (%zu GPUs)\n\n",
      gpus);
  std::printf("%6s | %12s %12s %9s | %14s %12s\n", "gap", "adaptive(s)",
              "elastic(s)", "speedup", "adaptive top1", "elastic top1");

  for (const double gap : {0.0, 0.1, 0.2, 0.32, 0.5, 0.75}) {
    const auto devices = sim::v100_heterogeneous(gpus, gap);
    auto adaptive =
        core::make_trainer(core::Method::kAdaptive, dataset, cfg, devices)
            ->train();
    auto elastic =
        core::make_trainer(core::Method::kElastic, dataset, cfg, devices)
            ->train();
    std::printf("%5.0f%% | %12.4f %12.4f %8.2f%% | %13.2f%% %11.2f%%\n",
                100 * gap, adaptive.total_vtime, elastic.total_vtime,
                100 * (elastic.total_vtime / adaptive.total_vtime - 1.0),
                100 * adaptive.best_top1(), 100 * elastic.best_top1());
  }

  std::printf(
      "\nReading: 'speedup' is the wall-clock Elastic loses to stragglers "
      "at each\nheterogeneity level — it should be ~0 on a homogeneous "
      "server and grow with the gap,\nwhich is exactly the paper's case for "
      "dynamic scheduling + batch size scaling.\n");
  return 0;
}
